(** Random relational scenarios — schema, domains, table and queries —
    the shared input shape of the differential oracle harness.

    Group domains are generated alongside the table because SAGMA's
    Setup (Algorithm 1) requires every group column's full domain up
    front; generated rows only ever use in-domain group values. *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query

type scenario = {
  bucket_size : int;
  max_group_attrs : int;
  value_columns : string list;
  group_domains : (string * Value.t list) list;
  filter_domains : (string * Value.t list) list;
  schema : Table.schema;
  rows : Value.t array list;
  table : Table.t;
  queries : Query.t list;
}

val domain_gen : max_size:int -> Value.t list Gen.t
(** Distinct string- or int-typed domain of 1..max_size values. *)

val query_gen :
  (string * Value.t list) list ->
  (string * Value.t list) list ->
  string list ->
  max_group_attrs:int ->
  Query.t Gen.t
(** Random GROUP BY subset (≤ t), SUM/COUNT/AVG, optional equality
    filter — sometimes on a value absent from the table. *)

val scenario_gen : ?max_rows:int -> ?max_queries:int -> unit -> scenario Gen.t

val equal_leakage_pair_gen :
  ?max_rows:int -> ?max_queries:int -> unit -> (scenario * Table.t) Gen.t
(** A scenario (with at least one row) plus a twin table with identical
    group and filter cells but different value-column plaintexts in
    every row — an equal-leakage pair under the §4.2 leakage function,
    the chosen-input precondition of the simulator-indistinguishability
    game ({!Sagma_games.Sim_ind}). Equality of the two
    [Sagma.Leakage.profile]s is property-checked in [test_games]. *)

val scenario_shrink : scenario Shrink.t
(** Drops rows first, then queries (never below one query). *)

val print_scenario : scenario -> string

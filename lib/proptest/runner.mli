(** Property runner: deterministic seeding, greedy shrinking and
    replayable counterexample reports.

    Case [i] of a test draws from a DRBG seeded with
    [name ^ "|" ^ case_seed], where [case_seed] is the run seed for
    [i = 0] and [seed ^ "@" ^ i] otherwise. A failure report prints that
    case seed: re-running the suite with it (via [~seed] or
    [SAGMA_PROP_SEED]) replays the failing draw verbatim as case 0.

    Environment overrides, read by {!run}:
    - [SAGMA_PROP_SEED] — replaces the suite seed;
    - [SAGMA_PROP_COUNT] — absolute case count for every test (use 1
      when replaying a failure seed);
    - [SAGMA_PROP_SCALE] — percentage multiplier on each test's own
      count (e.g. 500 for a 5× deeper nightly run). *)

exception Discard
(** Raise inside a property to reject the drawn input (precondition not
    met); the case counts as neither pass nor failure. *)

type 'a arbitrary = {
  gen : 'a Gen.t;
  shrink : 'a Shrink.t;
  print : 'a -> string;
}

val arbitrary : ?shrink:'a Shrink.t -> ?print:('a -> string) -> 'a Gen.t -> 'a arbitrary

type test

val test : ?count:int -> name:string -> 'a arbitrary -> ('a -> bool) -> test
(** A named property over generated inputs; [count] (default 100) cases
    are drawn per run. The property fails by returning [false] or
    raising (other than {!Discard}). *)

val default_seed : string

val case_seed : string -> int -> string
(** [case_seed seed i] is the seed of case [i]: [seed] itself for
    [i = 0], [seed ^ "@" ^ i] otherwise — the string failure reports
    print, and the convention the security games ({!Sagma_games.Game})
    reuse for per-trial replay. *)

val run : ?seed:string -> suite:string -> test list -> unit
(** Run every test, print one line per property, and [exit 1] when any
    failed — wired as the main of each [test_prop_*] executable under
    [dune runtest]. *)

val run_result : ?seed:string -> suite:string -> test list -> int
(** Like {!run} but returns the number of failed properties instead of
    exiting, so harnesses that mix properties with other checks (the
    games runner) can combine failure counts into one exit status —
    and so the exit path itself is testable: [run] is exactly
    [exit 1 iff run_result > 0]. *)

val failure_of : ?seed:string -> ?count:int -> test -> (string * string) option
(** Run one test silently and return [Some (case_seed, report)] for its
    first failure (after shrinking), [None] when every case passes.
    [count] defaults to the test's own count, ignoring the environment
    overrides. Meta-testing hook: lets a suite assert that a
    deliberately broken property fails, shrinks, and that its printed
    seed replays to the same minimal counterexample. *)

(** {1 Binomial statistics}

    Shared by the security games: a distinguisher winning [wins] of
    [trials] fair-coin trials is statistically indistinguishable from
    blind guessing as long as 1/2 lies inside the Wilson score interval
    of its observed win rate. *)

val z_for_confidence : float -> float
(** Two-sided normal quantile for a confidence level (supported points:
    0.90, 0.95, 0.99, 0.999; others round to the nearest). *)

val wilson_interval : wins:int -> trials:int -> z:float -> float * float
(** Wilson score interval [(lo, hi)] for the underlying win probability,
    clamped to [\[0, 1\]]. Well-behaved at observed rates 0 and 1, where
    broken schemes land. *)

val advantage : wins:int -> trials:int -> float
(** Observed distinguishing advantage [|wins/trials - 1/2|]. *)

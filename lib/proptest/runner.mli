(** Property runner: deterministic seeding, greedy shrinking and
    replayable counterexample reports.

    Case [i] of a test draws from a DRBG seeded with
    [name ^ "|" ^ case_seed], where [case_seed] is the run seed for
    [i = 0] and [seed ^ "@" ^ i] otherwise. A failure report prints that
    case seed: re-running the suite with it (via [~seed] or
    [SAGMA_PROP_SEED]) replays the failing draw verbatim as case 0.

    Environment overrides, read by {!run}:
    - [SAGMA_PROP_SEED] — replaces the suite seed;
    - [SAGMA_PROP_COUNT] — absolute case count for every test (use 1
      when replaying a failure seed);
    - [SAGMA_PROP_SCALE] — percentage multiplier on each test's own
      count (e.g. 500 for a 5× deeper nightly run). *)

exception Discard
(** Raise inside a property to reject the drawn input (precondition not
    met); the case counts as neither pass nor failure. *)

type 'a arbitrary = {
  gen : 'a Gen.t;
  shrink : 'a Shrink.t;
  print : 'a -> string;
}

val arbitrary : ?shrink:'a Shrink.t -> ?print:('a -> string) -> 'a Gen.t -> 'a arbitrary

type test

val test : ?count:int -> name:string -> 'a arbitrary -> ('a -> bool) -> test
(** A named property over generated inputs; [count] (default 100) cases
    are drawn per run. The property fails by returning [false] or
    raising (other than {!Discard}). *)

val default_seed : string

val run : ?seed:string -> suite:string -> test list -> unit
(** Run every test, print one line per property, and [exit 1] when any
    failed — wired as the main of each [test_prop_*] executable under
    [dune runtest]. *)

(* Random relational scenarios: a schema with value/group/filter
   columns, a table whose group cells stay inside declared domains, and
   a batch of aggregation queries over them.

   This is the shared input shape of the differential oracle
   (test/test_prop_oracle.ml): every encrypted scheme in the repository
   answers the same Query.t over the same Table.t as the plaintext
   executor, so one generator feeds them all. Group domains are
   generated alongside the table because SAGMA's Setup (Algorithm 1)
   requires each group column's full domain up front. *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query

type scenario = {
  bucket_size : int;
  max_group_attrs : int;
  value_columns : string list;
  group_domains : (string * Value.t list) list;
  filter_domains : (string * Value.t list) list;
  schema : Table.schema;
  rows : Value.t array list;
  table : Table.t;
  queries : Query.t list;
}

let string_pool = [ "alpha"; "beta"; "gamma"; "delta"; "eps"; "zeta"; "eta"; "theta" ]

(* Distinct domain of 1..max_size values, string- or int-typed. *)
let domain_gen ~(max_size : int) : Value.t list Gen.t =
  Gen.bind (Gen.int_range 1 max_size) (fun n ->
      Gen.bind Gen.bool (fun strs ->
          if strs then
            Gen.map
              (fun pool -> List.filteri (fun i _ -> i < n) pool)
              (Gen.shuffle string_pool)
            |> Gen.map (List.map (fun s -> Value.Str s))
          else
            Gen.map
              (fun pool -> List.filteri (fun i _ -> i < n) pool)
              (Gen.shuffle [ 0; 1; 2; 3; 4; 5; 6; 7 ])
            |> Gen.map (List.map (fun i -> Value.Int i))))

let query_gen (sc_groups : (string * Value.t list) list)
    (sc_filters : (string * Value.t list) list) (value_columns : string list)
    ~(max_group_attrs : int) : Query.t Gen.t =
 fun d ->
  let group_names = List.map fst sc_groups in
  let picked = Gen.subset group_names d in
  let group_by = List.filteri (fun i _ -> i < max_group_attrs) picked in
  let vcol = Gen.oneofl value_columns d in
  let aggregate =
    Gen.frequency
      [ (3, Gen.return (Query.Sum vcol)); (1, Gen.return Query.Count);
        (1, Gen.return (Query.Avg vcol)) ]
      d
  in
  let where =
    if sc_filters = [] || Gen.int_below 3 d > 0 then []
    else begin
      let col, dom = Gen.oneofl sc_filters d in
      (* Occasionally filter on a value absent from the table, so empty
         results stay covered. *)
      [ (col, Gen.oneofl dom d) ]
    end
  in
  Query.make ~where ~group_by aggregate

let scenario_gen ?(max_rows = 12) ?(max_queries = 3) () : scenario Gen.t =
 fun d ->
  let num_groups = Gen.int_range 1 3 d in
  let group_domains =
    List.init num_groups (fun i ->
        (Printf.sprintf "g%d" i, domain_gen ~max_size:6 d))
  in
  let value_columns = [ "v0" ] in
  let with_filter = Gen.bool d in
  let filter_domains =
    if with_filter then [ ("f0", List.map (fun s -> Value.Str s) [ "x"; "y"; "z" ]) ] else []
  in
  let bucket_size = Gen.int_range 1 3 d in
  let max_group_attrs = Gen.int_range 1 num_groups d in
  let schema =
    List.map (fun c -> { Table.name = c; ty = Value.TInt }) value_columns
    @ List.map
        (fun (c, dom) -> { Table.name = c; ty = Value.ty_of (List.hd dom) })
        group_domains
    @ List.map (fun (c, _) -> { Table.name = c; ty = Value.TStr }) filter_domains
  in
  let num_rows = Gen.size ~hi:max_rows () d in
  let rows =
    List.init num_rows (fun _ ->
        Array.of_list
          (List.map (fun _ -> Value.Int (Gen.int_edgy 0 99 d)) value_columns
          @ List.map (fun (_, dom) -> Gen.oneofl dom d) group_domains
          @ List.map (fun (_, dom) -> Gen.oneofl dom d) filter_domains))
  in
  let table = Table.of_rows schema rows in
  let num_queries = Gen.int_range 1 max_queries d in
  let queries =
    List.init num_queries (fun _ ->
        query_gen group_domains filter_domains value_columns ~max_group_attrs d)
  in
  { bucket_size; max_group_attrs; value_columns; group_domains; filter_domains; schema; rows;
    table; queries }

(* An equal-leakage pair: the §4.2 leakage function sees only bucket and
   filter keywords (derived from group/filter cells) plus public shapes,
   never the aggregated values — so two tables sharing every group and
   filter cell but differing in a value column have identical leakage
   under any query sequence. That is exactly the precondition of the
   simulator-indistinguishability game; the generator enforces it by
   construction (value columns sit first in the scenario schema), and a
   property in test_games re-checks it through Leakage.profile. *)
let equal_leakage_pair_gen ?(max_rows = 8) ?(max_queries = 3) () :
    (scenario * Table.t) Gen.t =
 fun d ->
  let sc = scenario_gen ~max_rows ~max_queries () d in
  (* At least one row, so "different plaintexts" is satisfiable. *)
  let sc =
    if sc.rows <> [] then sc
    else begin
      let row =
        Array.of_list
          (List.map (fun _ -> Value.Int (Gen.int_edgy 0 99 d)) sc.value_columns
          @ List.map (fun (_, dom) -> Gen.oneofl dom d) sc.group_domains
          @ List.map (fun (_, dom) -> Gen.oneofl dom d) sc.filter_domains)
      in
      let rows = [ row ] in
      { sc with rows; table = Table.of_rows sc.schema rows }
    end
  in
  let num_values = List.length sc.value_columns in
  let rows' =
    List.map
      (fun row ->
        let row' = Array.copy row in
        for j = 0 to num_values - 1 do
          (* (v + k) mod 100 with k in [1, 99] never maps v to itself,
             so every value cell of the twin differs. *)
          match row'.(j) with
          | Value.Int v -> row'.(j) <- Value.Int ((v + Gen.int_range 1 99 d) mod 100)
          | _ -> ()
        done;
        row')
      sc.rows
  in
  (sc, Table.of_rows sc.schema rows')

(* Shrinking drops rows first (the usual culprit carrier), then queries. *)
let scenario_shrink : scenario Shrink.t =
 fun sc ->
  let with_rows rows = { sc with rows; table = Table.of_rows sc.schema rows } in
  let with_queries queries = { sc with queries } in
  Seq.append
    (Seq.map with_rows (Shrink.list () sc.rows))
    (Seq.filter_map
       (fun qs -> if qs = [] then None else Some (with_queries qs))
       (Shrink.list () sc.queries))

let print_scenario (sc : scenario) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "bucket_size=%d max_group_attrs=%d\n" sc.bucket_size sc.max_group_attrs);
  List.iter
    (fun (c, dom) ->
      Buffer.add_string b
        (Printf.sprintf "domain %s = {%s}\n" c
           (String.concat ", " (List.map Value.to_string dom))))
    sc.group_domains;
  Buffer.add_string b (Format.asprintf "%a" Table.pp sc.table);
  List.iter (fun q -> Buffer.add_string b (Query.to_sql q ^ "\n")) sc.queries;
  Buffer.contents b

(* Property runner: deterministic case seeding, greedy shrinking, and
   counterexample reports that name the exact seed reproducing the
   failure.

   Case i of a test draws from a DRBG seeded with
   [test_name ^ "|" ^ case_seed], where [case_seed] is the run seed for
   i = 0 and [seed ^ "@" ^ i] otherwise. Re-running the suite with
   ~seed:"<seed>@<i>" therefore replays the failing draw verbatim as its
   case 0 — that is the string failure reports print. *)

module Drbg = Sagma_crypto.Drbg

exception Discard
(* A property raises this to reject the drawn input (precondition not
   met); the case counts as neither pass nor failure. *)

type 'a arbitrary = {
  gen : 'a Gen.t;
  shrink : 'a Shrink.t;
  print : 'a -> string;
}

let arbitrary ?(shrink = Shrink.nothing) ?(print = fun _ -> "<no printer>") (gen : 'a Gen.t) :
    'a arbitrary =
  { gen; shrink; print }

type test = {
  name : string;
  count : int;
  body : seed:string -> count:int -> (string * string) option;
      (* [body] runs all cases; [Some (case_seed, report)] on failure. *)
}

type outcome = Pass | Fail of string | Skip

let run_prop (prop : 'a -> bool) (x : 'a) : outcome =
  match prop x with
  | true -> Pass
  | false -> Fail "returned false"
  | exception Discard -> Skip
  | exception e -> Fail ("raised " ^ Printexc.to_string e)

let max_shrink_steps = 500

(* Greedy descent: take the first shrink candidate that still fails,
   repeat until none does or the step budget runs out. *)
let shrink_loop (arb : 'a arbitrary) (prop : 'a -> bool) (x0 : 'a) (why0 : string) :
    'a * string * int =
  let rec go x why steps =
    if steps >= max_shrink_steps then (x, why, steps)
    else begin
      let next =
        Seq.find_map
          (fun c -> match run_prop prop c with Fail w -> Some (c, w) | Pass | Skip -> None)
          (arb.shrink x)
      in
      match next with
      | Some (c, w) -> go c w (steps + 1)
      | None -> (x, why, steps)
    end
  in
  go x0 why0 0

let case_seed (seed : string) (i : int) : string =
  if i = 0 then seed else Printf.sprintf "%s@%d" seed i

(* --- binomial statistics (shared with the security games) ------------------

   A distinguisher that wins w of n independent trials has observed win
   rate p̂ = w/n; the Wilson score interval around p̂ is the acceptance
   region the games use: the scheme passes as long as the interval still
   contains the blind-guess rate 1/2. Wilson (rather than the normal
   approximation) stays sane at p̂ near 0 or 1, exactly where a broken
   scheme lands. *)

let z_for_confidence (c : float) : float =
  (* Two-sided normal quantiles for the confidence levels the harness
     uses; anything else maps to the nearest, erring conservative. *)
  if c >= 0.999 then 3.2905
  else if c >= 0.99 then 2.5758
  else if c >= 0.95 then 1.9600
  else 1.6449

let wilson_interval ~(wins : int) ~(trials : int) ~(z : float) : float * float =
  if trials <= 0 then (0.0, 1.0)
  else begin
    let n = float_of_int trials in
    let p = float_of_int wins /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let center = p +. (z2 /. (2.0 *. n)) in
    let margin = z *. sqrt (((p *. (1.0 -. p)) /. n) +. (z2 /. (4.0 *. n *. n))) in
    (Float.max 0.0 ((center -. margin) /. denom), Float.min 1.0 ((center +. margin) /. denom))
  end

let advantage ~(wins : int) ~(trials : int) : float =
  if trials <= 0 then 0.0
  else Float.abs ((float_of_int wins /. float_of_int trials) -. 0.5)

let test ?(count = 100) ~(name : string) (arb : 'a arbitrary) (prop : 'a -> bool) : test =
  let body ~seed ~count =
    let failure = ref None in
    let discards = ref 0 in
    let i = ref 0 in
    while !failure = None && !i < count do
      let cs = case_seed seed !i in
      let drbg = Drbg.create (name ^ "|" ^ cs) in
      let x = arb.gen drbg in
      (match run_prop prop x with
       | Pass -> ()
       | Skip -> incr discards
       | Fail why ->
         let x', why', steps = shrink_loop arb prop x why in
         let report =
           Printf.sprintf
             "falsified at case %d (%s); after %d shrink steps:\n      counterexample: %s\n      %s"
             !i cs steps (arb.print x') why'
         in
         failure := Some (cs, report));
      incr i
    done;
    !failure
  in
  { name; count; body }

(* --- suite runner ----------------------------------------------------------- *)

let default_seed = "sagma-prop-2026"

let env_seed () = Sys.getenv_opt "SAGMA_PROP_SEED"

let env_count () =
  match Sys.getenv_opt "SAGMA_PROP_COUNT" with
  | None -> None
  | Some s -> int_of_string_opt s

let env_scale () =
  match Sys.getenv_opt "SAGMA_PROP_SCALE" with
  | None -> None
  | Some s -> int_of_string_opt s

let effective_count (t : test) : int =
  match env_count () with
  | Some n -> n
  | None -> (
    match env_scale () with
    | Some pct -> Stdlib.max 1 (t.count * pct / 100)
    | None -> t.count)

let failure_of ?(seed = default_seed) ?count (t : test) : (string * string) option =
  let count = match count with Some n -> n | None -> t.count in
  t.body ~seed ~count

let run_result ?seed ~(suite : string) (tests : test list) : int =
  let seed =
    match env_seed () with
    | Some s -> s
    | None -> ( match seed with Some s -> s | None -> default_seed)
  in
  Printf.printf "%s: %d properties, seed %S\n%!" suite (List.length tests) seed;
  let failures = ref 0 in
  List.iter
    (fun t ->
      let count = effective_count t in
      let t0 = Sys.time () in
      match t.body ~seed ~count with
      | None ->
        Printf.printf "  ok   %-40s (%d cases, %.2fs)\n%!" t.name count (Sys.time () -. t0)
      | Some (cs, report) ->
        incr failures;
        Printf.printf "  FAIL %s: %s\n" t.name report;
        Printf.printf "       replay: SAGMA_PROP_SEED=%S SAGMA_PROP_COUNT=1 dune exec test/%s.exe\n"
          cs suite;
        Printf.printf "       (equivalently: Runner.run ~seed:%S with count 1)\n%!" cs)
    tests;
  if !failures > 0 then Printf.printf "%s: %d FAILED\n%!" suite !failures
  else Printf.printf "%s: all passed\n%!" suite;
  !failures

let run ?seed ~(suite : string) (tests : test list) : unit =
  if run_result ?seed ~suite tests > 0 then exit 1

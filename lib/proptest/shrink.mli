(** Counterexample shrinking: a shrinker maps a failing value to a
    finite sequence of smaller candidates; the runner recurses on the
    first candidate that still fails the property. *)

module Z = Sagma_bigint.Bigint

type 'a t = 'a -> 'a Seq.t

val nothing : 'a t

val int : int t
(** Halving walk toward zero. *)

val int_toward : int -> int t
val bigint : Z.t t
val option : 'a t -> 'a option t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val list : ?shrink_elt:'a t -> unit -> 'a list t
(** Drops element chunks (halves, quarters, …, singletons), then shrinks
    elements in place. *)

val array : ?shrink_elt:'a t -> unit -> 'a array t

val string : string t

(* Composable random-value generators, drawn from the repository's own
   deterministic DRBG (lib/crypto/drbg.ml).

   A generator is simply a function of the DRBG; composition is function
   composition, so generators stay referentially transparent per seed:
   the same seed always produces the same value, which is what makes
   failing property cases replayable (see {!Runner}). *)

module Drbg = Sagma_crypto.Drbg
module Z = Sagma_bigint.Bigint

type 'a t = Drbg.t -> 'a

let return (x : 'a) : 'a t = fun _ -> x

let map (f : 'a -> 'b) (g : 'a t) : 'b t = fun d -> f (g d)

let map2 (f : 'a -> 'b -> 'c) (ga : 'a t) (gb : 'b t) : 'c t =
 fun d ->
  let a = ga d in
  let b = gb d in
  f a b

let map3 (f : 'a -> 'b -> 'c -> 'd) (ga : 'a t) (gb : 'b t) (gc : 'c t) : 'd t =
 fun d ->
  let a = ga d in
  let b = gb d in
  let c = gc d in
  f a b c

let bind (g : 'a t) (f : 'a -> 'b t) : 'b t =
 fun d ->
  let a = g d in
  f a d

let pair (ga : 'a t) (gb : 'b t) : ('a * 'b) t = map2 (fun a b -> (a, b)) ga gb

let triple (ga : 'a t) (gb : 'b t) (gc : 'c t) : ('a * 'b * 'c) t =
  map3 (fun a b c -> (a, b, c)) ga gb gc

(* --- scalars ---------------------------------------------------------------- *)

let bool : bool t = Drbg.bool

let int_range (lo : int) (hi : int) : int t =
 fun d ->
  if lo > hi then invalid_arg "Gen.int_range: lo > hi";
  if hi - lo + 1 > 0 then Drbg.int_range d lo hi
  else begin
    (* Span wider than max_int: rejection-sample uniform native ints
       (63 random bits reinterpreted as a signed int). *)
    let rec go () =
      let b = Drbg.bytes d 8 in
      let v = ref 0 in
      String.iter (fun c -> v := (!v lsl 8) lor Char.code c) b;
      if !v >= lo && !v <= hi then !v else go ()
    in
    go ()
  end

let int_below (bound : int) : int t = fun d -> Drbg.int_below d bound

(* Log-uniform positive size: favors small structures while still
   reaching [hi], which is what shrinking-friendly structure generation
   wants. *)
let size ?(lo = 0) ~(hi : int) () : int t =
 fun d ->
  if hi < lo then invalid_arg "Gen.size: hi < lo";
  let span = hi - lo in
  if span = 0 then lo
  else begin
    let bits =
      let rec width w v = if v = 0 then w else width (w + 1) (v lsr 1) in
      width 0 span
    in
    let b = 1 + Drbg.int_below d bits in
    lo + Drbg.int_below d (Stdlib.min (span + 1) (1 lsl b))
  end

(* Mostly in-range, sometimes the exact boundaries: integer properties
   live or die at the edges. *)
let int_edgy (lo : int) (hi : int) : int t =
 fun d ->
  match Drbg.int_below d 10 with
  | 0 -> lo
  | 1 -> hi
  | _ -> int_range lo hi d

let oneofl (xs : 'a list) : 'a t =
 fun d ->
  if xs = [] then invalid_arg "Gen.oneofl: empty";
  List.nth xs (Drbg.int_below d (List.length xs))

let oneof (gs : 'a t list) : 'a t =
 fun d ->
  if gs = [] then invalid_arg "Gen.oneof: empty";
  List.nth gs (Drbg.int_below d (List.length gs)) d

let frequency (weighted : (int * 'a t) list) : 'a t =
 fun d ->
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Gen.frequency: non-positive total weight";
  let roll = Drbg.int_below d total in
  let rec go acc = function
    | [] -> assert false
    | (w, g) :: rest -> if roll < acc + w then g d else go (acc + w) rest
  in
  go 0 weighted

(* --- structures ------------------------------------------------------------- *)

let list_size (n : int t) (g : 'a t) : 'a list t =
 fun d ->
  let len = n d in
  List.init len (fun _ -> g d)

let list ?(max_len = 16) (g : 'a t) : 'a list t = list_size (size ~hi:max_len ()) g

let array_size (n : int t) (g : 'a t) : 'a array t =
 fun d ->
  let len = n d in
  Array.init len (fun _ -> g d)

let array ?(max_len = 16) (g : 'a t) : 'a array t = array_size (size ~hi:max_len ()) g

let string_size ?(chars = fun d -> Char.chr (Drbg.int_range d 0x20 0x7e)) (n : int t) : string t =
 fun d ->
  let len = n d in
  String.init len (fun _ -> chars d)

let string ?(max_len = 16) () : string t = string_size (size ~hi:max_len ())

let bytes_size (n : int t) : string t =
  string_size ~chars:(fun d -> Char.chr (Drbg.int_below d 256)) n

let bytes ?(max_len = 32) () : string t = bytes_size (size ~hi:max_len ())

let shuffle (xs : 'a list) : 'a list t =
 fun d ->
  let a = Array.of_list xs in
  Drbg.shuffle d a;
  Array.to_list a

(* Non-empty random subset of [xs], in [xs]'s order. *)
let subset (xs : 'a list) : 'a list t =
 fun d ->
  if xs = [] then invalid_arg "Gen.subset: empty";
  let rec go () =
    let picked = List.filter (fun _ -> Drbg.bool d) xs in
    if picked = [] then go () else picked
  in
  go ()

(* --- bigints ---------------------------------------------------------------- *)

let bigint_bits (bits : int) : Z.t t = fun d -> Z.random_bits (Drbg.rng d) bits

let bigint_below (bound : Z.t) : Z.t t = fun d -> Z.random_below (Drbg.rng d) bound

(* Values hugging the 26-bit limb boundaries of lib/bigint/nat.ml:
   2^(26k) ± δ and (2^26 − 1)-limb runs — where carry, borrow and
   normalization bugs live. *)
let bigint_boundary : Z.t t =
 fun d ->
  let limb_bits = 26 in
  let k = 1 + Drbg.int_below d 8 in
  match Drbg.int_below d 4 with
  | 0 ->
    (* 2^(26k) ± δ, straddling a limb boundary *)
    let delta = Drbg.int_range d (-2) 2 in
    let v = Z.add (Z.shift_left Z.one (limb_bits * k)) (Z.of_int delta) in
    if Z.sign v <= 0 then Z.one else v
  | 1 ->
    (* k limbs of all-ones: maximal carry chains *)
    Z.pred (Z.shift_left Z.one (limb_bits * k))
  | 2 ->
    (* a single high limb with its top bit set (base/2 ≤ limb < base) *)
    let top = Drbg.int_range d (1 lsl (limb_bits - 1)) ((1 lsl limb_bits) - 1) in
    Z.shift_left (Z.of_int top) (limb_bits * (k - 1))
  | _ ->
    (* plain uniform filler of up to 8 limbs *)
    Z.random_bits (Drbg.rng d) (1 + Drbg.int_below d (limb_bits * 8))

let bigint ?(bits = 192) () : Z.t t =
  frequency [ (3, fun d -> Z.random_bits (Drbg.rng d) (1 + Drbg.int_below d bits));
              (2, bigint_boundary);
              (1, oneofl [ Z.zero; Z.one; Z.two ]) ]

let bigint_signed ?bits () : Z.t t =
  map2 (fun neg z -> if neg then Z.neg z else z) bool (bigint ?bits ())

let bigint_nonzero ?bits () : Z.t t =
 fun d ->
  let rec go () =
    let z = bigint ?bits () d in
    if Z.is_zero z then go () else z
  in
  go ()

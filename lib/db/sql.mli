(** A parser for the SQL fragment SAGMA supports:

    {[ SELECT AGG(col)[, g1, ...] FROM t
       [WHERE col = lit AND ... AND col BETWEEN n AND m]
       GROUP BY g1[, ...] [;]                                  ]}

    AGG ∈ {{!Query.Sum}, {!Query.Count}, {!Query.Avg}}; string literals
    in single quotes ('' escapes a quote); keywords case-insensitive. *)

exception Parse_error of string

type statement = {
  query : Query.t;
  table : string;
  selected : string list;  (** non-aggregate select columns, if any *)
}

val parse : string -> statement
(** @raise Parse_error with a human-readable message. When grouping
    columns are selected alongside the aggregate (paper style) they must
    agree with the GROUP BY list. *)

val parse_query : string -> Query.t

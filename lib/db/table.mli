(** In-memory relational tables: a schema plus row-major cells. *)

type column = { name : string; ty : Value.ty }
type schema = column list

type t

val make : schema -> t
(** Empty table. @raise Invalid_argument on duplicate column names. *)

val of_rows : schema -> Value.t array list -> t
(** Bulk constructor. @raise Invalid_argument on arity mismatch. *)

val insert : t -> Value.t array -> t
(** Append one row, checking arity and types. *)

val schema : t -> schema
val row_count : t -> int
val rows : t -> Value.t array list
val column_names : t -> string list

val column_index : t -> string -> int
(** @raise Invalid_argument for unknown columns. *)

val column_ty : t -> string -> Value.ty

val get : Value.t array -> int -> Value.t

val distinct : t -> string -> Value.t list
(** Distinct values of a column, sorted. *)

val pp : Format.formatter -> t -> unit

(** The aggregation query fragment SAGMA supports:

    {[ SELECT AGG(col) FROM t [WHERE c = v AND ...] GROUP BY g1, ..., gq ]} *)

type aggregate =
  | Sum of string
  | Count
  | Avg of string  (** computed as SUM/COUNT client-side *)

type t = {
  aggregate : aggregate;
  group_by : string list;           (** q ≥ 1 grouping attributes *)
  where : (string * Value.t) list;  (** conjunctive equality filters *)
  ranges : (string * int * int) list;
      (** conjunctive BETWEEN filters on int columns, inclusive bounds *)
}

val make :
  ?where:(string * Value.t) list ->
  ?ranges:(string * int * int) list ->
  group_by:string list ->
  aggregate ->
  t
(** @raise Invalid_argument on an empty or duplicated GROUP BY list or an
    empty range. *)

val value_column : aggregate -> string option
(** The aggregated column, [None] for COUNT. *)

val aggregate_name : aggregate -> string

val to_sql : t -> string
(** Render as SQL (used for display and as the pre-computation
    baseline's cell fingerprint). *)

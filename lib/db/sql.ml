(* A parser for the SQL fragment SAGMA supports:

       SELECT AGG(col)[, g1, ...] FROM ident
       [WHERE col = lit [AND ...] | col BETWEEN n AND m]
       GROUP BY g1[, g2 ...] [;]

   with AGG ∈ {SUM, COUNT, AVG}, string literals in single quotes and
   case-insensitive keywords. Produces a {!Query.t}. *)

type token =
  | Ident of string
  | Int_lit of int
  | Str_lit of string
  | Lparen
  | Rparen
  | Comma
  | Star
  | Eq
  | Semi

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let tokenize (input : string) : token list =
  let n = String.length input in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (out := Lparen :: !out; incr i)
    else if c = ')' then (out := Rparen :: !out; incr i)
    else if c = ',' then (out := Comma :: !out; incr i)
    else if c = '*' then (out := Star :: !out; incr i)
    else if c = '=' then (out := Eq :: !out; incr i)
    else if c = ';' then (out := Semi :: !out; incr i)
    else if c = '\'' then begin
      (* single-quoted string, '' escapes a quote *)
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= n then fail "unterminated string literal";
        if input.[!i] = '\'' then begin
          if !i + 1 < n && input.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      out := Str_lit (Buffer.contents buf) :: !out
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && input.[!i + 1] >= '0' && input.[!i + 1] <= '9')
    then begin
      let start = !i in
      incr i;
      while !i < n && input.[!i] >= '0' && input.[!i] <= '9' do
        incr i
      done;
      out := Int_lit (int_of_string (String.sub input start (!i - start))) :: !out
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      out := Ident (String.sub input start (!i - start)) :: !out
    end
    else fail "unexpected character %C" c
  done;
  List.rev !out

(* --- recursive-descent parser over a mutable token stream ----------------- *)

type stream = { mutable toks : token list }

let peek (s : stream) : token option = match s.toks with [] -> None | t :: _ -> Some t

let advance (s : stream) : unit = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let keyword_eq (t : token) (kw : string) : bool =
  match t with Ident id -> String.lowercase_ascii id = kw | _ -> false

let expect_keyword (s : stream) (kw : string) : unit =
  match peek s with
  | Some t when keyword_eq t kw -> advance s
  | Some _ | None -> fail "expected %s" (String.uppercase_ascii kw)

let accept_keyword (s : stream) (kw : string) : bool =
  match peek s with
  | Some t when keyword_eq t kw ->
    advance s;
    true
  | _ -> false

let expect_ident (s : stream) ~(what : string) : string =
  match peek s with
  | Some (Ident id) ->
    advance s;
    id
  | _ -> fail "expected %s" what

let expect (s : stream) (t : token) ~(what : string) : unit =
  match peek s with
  | Some t' when t' = t -> advance s
  | _ -> fail "expected %s" what

let parse_aggregate (s : stream) : Query.aggregate =
  let name = String.lowercase_ascii (expect_ident s ~what:"aggregate function") in
  expect s Lparen ~what:"(";
  let agg =
    match name with
    | "sum" -> Query.Sum (expect_ident s ~what:"column name")
    | "avg" -> Query.Avg (expect_ident s ~what:"column name")
    | "count" -> begin
      match peek s with
      | Some Star ->
        advance s;
        Query.Count
      | Some (Ident _) ->
        advance s;
        (* COUNT over a non-null column equals a row count here *)
        Query.Count
      | _ -> fail "expected * or column in COUNT"
    end
    | other -> fail "unsupported aggregate %S" other
  in
  expect s Rparen ~what:")";
  agg

let parse_literal (s : stream) : Value.t =
  match peek s with
  | Some (Int_lit v) ->
    advance s;
    Value.Int v
  | Some (Str_lit v) ->
    advance s;
    Value.Str v
  | _ -> fail "expected literal"

let parse_int (s : stream) ~(what : string) : int =
  match peek s with
  | Some (Int_lit v) ->
    advance s;
    v
  | _ -> fail "expected integer %s" what

(* One WHERE clause: col = lit, or col BETWEEN n AND m. *)
let parse_clause (s : stream) :
    [ `Eq of string * Value.t | `Between of string * int * int ] =
  let col = expect_ident s ~what:"filter column" in
  match peek s with
  | Some Eq ->
    advance s;
    `Eq (col, parse_literal s)
  | Some t when keyword_eq t "between" ->
    advance s;
    let lo = parse_int s ~what:"range lower bound" in
    expect_keyword s "and";
    let hi = parse_int s ~what:"range upper bound" in
    `Between (col, lo, hi)
  | _ -> fail "expected = or BETWEEN after %S" col

type statement = {
  query : Query.t;
  table : string;
  selected : string list;  (* non-aggregate select columns, if any *)
}

let parse (input : string) : statement =
  let s = { toks = tokenize input } in
  expect_keyword s "select";
  let aggregate = parse_aggregate s in
  let selected = ref [] in
  while peek s = Some Comma do
    advance s;
    selected := expect_ident s ~what:"select column" :: !selected
  done;
  expect_keyword s "from";
  let table = expect_ident s ~what:"table name" in
  let where = ref [] and ranges = ref [] in
  if accept_keyword s "where" then begin
    let continue = ref true in
    while !continue do
      (match parse_clause s with
       | `Eq (c, v) -> where := (c, v) :: !where
       | `Between (c, lo, hi) -> ranges := (c, lo, hi) :: !ranges);
      continue := accept_keyword s "and"
    done
  end;
  expect_keyword s "group";
  expect_keyword s "by";
  let group_by = ref [ expect_ident s ~what:"grouping column" ] in
  while peek s = Some Comma do
    advance s;
    group_by := expect_ident s ~what:"grouping column" :: !group_by
  done;
  (match peek s with Some Semi -> advance s | _ -> ());
  (match peek s with
   | None -> ()
   | Some _ -> fail "trailing tokens after statement");
  let group_by = List.rev !group_by in
  let selected = List.rev !selected in
  (* Paper-style statements select the grouping columns alongside the
     aggregate; when present they must agree. *)
  if selected <> [] && List.sort compare selected <> List.sort compare group_by then
    fail "selected columns %s do not match GROUP BY %s" (String.concat "," selected)
      (String.concat "," group_by);
  { query = Query.make ~where:(List.rev !where) ~ranges:(List.rev !ranges) ~group_by aggregate;
    table;
    selected }

let parse_query (input : string) : Query.t = (parse input).query

(* The aggregation query fragment SAGMA supports:

       SELECT AGG(value_col) FROM t
       [WHERE col = v AND ... [AND col BETWEEN lo AND hi ...]]
       GROUP BY g1, ..., gq                                            *)

type aggregate =
  | Sum of string    (* SUM(col) *)
  | Count            (* COUNT of the group's rows *)
  | Avg of string    (* AVG(col), computed as SUM/COUNT client-side *)

type t = {
  aggregate : aggregate;
  group_by : string list;                  (* grouping attributes, q >= 1 *)
  where : (string * Value.t) list;         (* conjunctive equality filters *)
  ranges : (string * int * int) list;      (* conjunctive BETWEEN filters, inclusive *)
}

let make ?(where = []) ?(ranges = []) ~group_by aggregate =
  if group_by = [] then invalid_arg "Query.make: empty GROUP BY";
  let uniq = List.sort_uniq compare group_by in
  if List.length uniq <> List.length group_by then
    invalid_arg "Query.make: duplicate grouping attribute";
  List.iter
    (fun (col, lo, hi) ->
      if lo > hi then invalid_arg (Printf.sprintf "Query.make: empty range on %s" col))
    ranges;
  { aggregate; group_by; where; ranges }

let value_column = function
  | Sum c | Avg c -> Some c
  | Count -> None

let aggregate_name = function Sum c -> "SUM(" ^ c ^ ")" | Count -> "COUNT(*)" | Avg c -> "AVG(" ^ c ^ ")"

let to_sql (q : t) : string =
  let select =
    aggregate_name q.aggregate ^ ", " ^ String.concat ", " q.group_by
  in
  let literal = function
    | Value.Int v -> string_of_int v
    | Value.Str s -> "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"
  in
  let clauses =
    List.map (fun (c, v) -> Printf.sprintf "%s = %s" c (literal v)) q.where
    @ List.map (fun (c, lo, hi) -> Printf.sprintf "%s BETWEEN %d AND %d" c lo hi) q.ranges
  in
  let where = match clauses with [] -> "" | cs -> " WHERE " ^ String.concat " AND " cs in
  Printf.sprintf "SELECT %s FROM t%s GROUP BY %s;" select where (String.concat ", " q.group_by)

(* Typed cell values for the relational substrate. *)

type ty = TInt | TStr

type t =
  | Int of int
  | Str of string

let ty_of = function Int _ -> TInt | Str _ -> TStr

let compare (a : t) (b : t) : int =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Str x, Str y -> Stdlib.compare x y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1

let equal a b = compare a b = 0

let to_string = function
  | Int x -> string_of_int x
  | Str s -> s

(* Canonical keyword encoding used for PRF inputs and SSE keywords: the
   type tag prevents Int 1 / Str "1" collisions. *)
let encode = function
  | Int x -> "i:" ^ string_of_int x
  | Str s -> "s:" ^ s

let parse (ty : ty) (s : string) : t =
  match ty with
  | TInt -> Int (int_of_string (String.trim s))
  | TStr -> Str s

let as_int = function
  | Int x -> x
  | Str s -> invalid_arg (Printf.sprintf "Value.as_int: %S is not an Int" s)

let pp fmt v = Format.pp_print_string fmt (to_string v)

let ty_to_string = function TInt -> "int" | TStr -> "str"

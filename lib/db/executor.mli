(** Plaintext reference executor — the correctness oracle every encrypted
    scheme in this repository is tested against. *)

type result_row = {
  group : Value.t list;  (** grouping values, in GROUP BY order *)
  sum : int;             (** SUM of the value column (0 for COUNT) *)
  count : int;           (** group cardinality *)
}

val aggregate_value : Query.t -> result_row -> float
(** The aggregate the query asked for, derived from sum/count. *)

val matches_where : Table.t -> (string * Value.t) list -> Value.t array -> bool
val matches_ranges : Table.t -> (string * int * int) list -> Value.t array -> bool

val run : Table.t -> Query.t -> result_row list
(** Evaluate the query; results sorted by group key. *)

val pp_results : Format.formatter -> Query.t -> result_row list -> unit

(* Synthetic TPC-H [lineitem] rows.

   The paper's evaluation (§6.1) aggregates the TPC-H lineitem table. The
   official dbgen tool is unavailable in this environment, so we generate
   rows with the same columns and value distributions the aggregation
   benchmarks exercise: small categorical group columns and integer value
   columns. Aggregation cost depends only on row count and the bucket
   structure of the group columns, so this preserves the experiments'
   behaviour. Generation is deterministic given the DRBG seed. *)

module Drbg = Sagma_crypto.Drbg

let schema : Table.schema =
  [ { Table.name = "l_orderkey"; ty = Value.TInt };
    { Table.name = "l_quantity"; ty = Value.TInt };
    { Table.name = "l_extendedprice"; ty = Value.TInt };
    { Table.name = "l_discount"; ty = Value.TInt };      (* percent, 0..10 *)
    { Table.name = "l_returnflag"; ty = Value.TStr };    (* A | N | R *)
    { Table.name = "l_linestatus"; ty = Value.TStr };    (* O | F *)
    { Table.name = "l_shipmode"; ty = Value.TStr };      (* 7 modes *)
    { Table.name = "l_shipmonth"; ty = Value.TInt };     (* 1..12 *)
    { Table.name = "l_shippriority"; ty = Value.TInt } ] (* 0..4 *)

let ship_modes = [| "AIR"; "FOB"; "MAIL"; "RAIL"; "REG AIR"; "SHIP"; "TRUCK" |]

(* TPC-H returnflag correlates with linestatus; reproduce the dependence
   coarsely: recent shipments are N/O, older ones A/F or R/F. *)
let flags_and_status (d : Drbg.t) =
  match Drbg.int_below d 2 with
  | 0 -> ("N", "O")
  | _ -> if Drbg.bool d then ("A", "F") else ("R", "F")

let random_row (d : Drbg.t) (i : int) : Value.t array =
  let quantity = 1 + Drbg.int_below d 50 in
  (* extendedprice ≈ quantity * unit price in [901, 2098]. *)
  let price = quantity * (901 + Drbg.int_below d 1198) in
  let flag, status = flags_and_status d in
  [| Value.Int (1 + (i / 4));
     Value.Int quantity;
     Value.Int price;
     Value.Int (Drbg.int_below d 11);
     Value.Str flag;
     Value.Str status;
     Value.Str ship_modes.(Drbg.int_below d (Array.length ship_modes));
     Value.Int (1 + Drbg.int_below d 12);
     Value.Int (Drbg.int_below d 5) |]

(* [generate ~rows d] builds a deterministic lineitem table. *)
let generate ~(rows : int) (d : Drbg.t) : Table.t =
  Table.of_rows schema (List.init rows (fun i -> random_row d i))

(* The evaluation's canonical queries over lineitem. *)
let query_sum_by_returnflag =
  Query.make ~group_by:[ "l_returnflag" ] (Query.Sum "l_extendedprice")

let query_count_by_flag_status =
  Query.make ~group_by:[ "l_returnflag"; "l_linestatus" ] Query.Count

let query_sum_by_flag_status_month =
  Query.make
    ~group_by:[ "l_returnflag"; "l_linestatus"; "l_shipmonth" ]
    (Query.Sum "l_quantity")

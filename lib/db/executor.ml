(* Plaintext reference executor: the correctness oracle every encrypted
   scheme in this repository is tested against. *)

type result_row = {
  group : Value.t list;  (* grouping attribute values, in GROUP BY order *)
  sum : int;             (* SUM of the value column (0 for COUNT) *)
  count : int;           (* group cardinality *)
}

(* The aggregate the query asked for, derived from sum/count. *)
let aggregate_value (q : Query.t) (r : result_row) : float =
  match q.aggregate with
  | Query.Sum _ -> float_of_int r.sum
  | Query.Count -> float_of_int r.count
  | Query.Avg _ -> if r.count = 0 then 0. else float_of_int r.sum /. float_of_int r.count

let matches_where (t : Table.t) (where : (string * Value.t) list) (row : Value.t array) : bool =
  List.for_all (fun (col, v) -> Value.equal row.(Table.column_index t col) v) where

let matches_ranges (t : Table.t) (ranges : (string * int * int) list) (row : Value.t array) :
    bool =
  List.for_all
    (fun (col, lo, hi) ->
      let v = Value.as_int row.(Table.column_index t col) in
      lo <= v && v <= hi)
    ranges

(* [run t q] evaluates [q] over [t]; result rows are sorted by group key
   so comparisons are order-insensitive. *)
let run (t : Table.t) (q : Query.t) : result_row list =
  let group_idxs = List.map (Table.column_index t) q.Query.group_by in
  let value_idx = Option.map (Table.column_index t) (Query.value_column q.Query.aggregate) in
  let groups : (Value.t list, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun row ->
      if matches_where t q.Query.where row && matches_ranges t q.Query.ranges row then begin
        let key = List.map (fun i -> row.(i)) group_idxs in
        let v = match value_idx with Some i -> Value.as_int row.(i) | None -> 0 in
        let sum, count = Option.value (Hashtbl.find_opt groups key) ~default:(0, 0) in
        Hashtbl.replace groups key (sum + v, count + 1)
      end)
    (Table.rows t);
  Hashtbl.fold (fun group (sum, count) acc -> { group; sum; count } :: acc) groups []
  |> List.sort (fun a b -> Stdlib.compare (List.map Value.to_string a.group) (List.map Value.to_string b.group))

let pp_results fmt (q : Query.t) (results : result_row list) =
  Format.fprintf fmt "%s | %s@." (Query.aggregate_name q.Query.aggregate)
    (String.concat " | " q.Query.group_by);
  List.iter
    (fun r ->
      Format.fprintf fmt "%g | %s@." (aggregate_value q r)
        (String.concat " | " (List.map Value.to_string r.group)))
    results

(** Typed cell values for the relational substrate. *)

type ty = TInt | TStr

type t =
  | Int of int
  | Str of string

val ty_of : t -> ty

val compare : t -> t -> int
(** Total order: all [Int]s before all [Str]s. *)

val equal : t -> t -> bool
val to_string : t -> string

val encode : t -> string
(** Canonical keyword encoding for PRF/SSE inputs; the type tag prevents
    [Int 1]/[Str "1"] collisions. *)

val parse : ty -> string -> t
(** @raise Failure on malformed integers. *)

val as_int : t -> int
(** @raise Invalid_argument on strings. *)

val pp : Format.formatter -> t -> unit
val ty_to_string : ty -> string

(** Synthetic TPC-H [lineitem] rows.

    The paper's evaluation aggregates TPC-H lineitem; the official dbgen
    is unavailable here, so rows are synthesized with the columns and
    cardinalities the benchmarks exercise. Deterministic given the DRBG
    seed; aggregation cost depends only on row count and bucket
    structure, so the substitution preserves the experiments'
    behaviour. *)

module Drbg = Sagma_crypto.Drbg

val schema : Table.schema
val ship_modes : string array

val generate : rows:int -> Drbg.t -> Table.t

(** Canonical evaluation queries. *)

val query_sum_by_returnflag : Query.t
val query_count_by_flag_status : Query.t
val query_sum_by_flag_status_month : Query.t

(** Minimal CSV support (RFC 4180 subset: quoted fields, embedded commas
    and quotes; no embedded newlines). *)

val split_line : string -> string list

val escape_field : string -> string

val parse : schema:Table.schema -> string -> Table.t
(** Parse a CSV with a header line matching the schema's column order.
    @raise Invalid_argument on header or row mismatches. *)

val render : Table.t -> string

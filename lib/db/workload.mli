(** Application grouping-query workloads (Figure 7).

    Each application is modelled as a weighted set of query templates
    whose GROUP BY attribute-count distribution matches the percentages
    the paper reports (Nextcloud 100/100/100, WordPress 97/99/100, Piwik
    25/83/95); benchmarks recompute the table from generated logs. *)

module Drbg = Sagma_crypto.Drbg

type application = Nextcloud | Wordpress | Piwik

val application_name : application -> string

val generate : application -> Drbg.t -> int -> Query.t list
(** Synthesize a log of n grouping queries. *)

val share_at_most : Query.t list -> int -> float
(** Percentage of queries with at most k grouping attributes. *)

val max_attributes : Query.t list -> int

(* Application grouping-query workloads.

   §6.1 (Figure 7) reports, for Nextcloud, WordPress and Piwik, the share
   of GROUP BY queries that use at most 1 / 2 / 3 grouping attributes:

       Nextcloud  100 / 100 / 100 %   (single attribute only, COUNT only)
       WordPress   97 /  99 / 100 %   (largest query: 3 attributes)
       Piwik       25 /  83 /  95 %   (largest query: 5 attributes)

   The applications' query logs are not redistributable, so we model each
   application as a weighted set of query templates whose GROUP BY
   attribute-count distribution matches the reported percentages; the
   bench then *recomputes* the table from generated workloads, exercising
   the same measurement code a log analysis would. *)

module Drbg = Sagma_crypto.Drbg

type application = Nextcloud | Wordpress | Piwik

let application_name = function
  | Nextcloud -> "Nextcloud"
  | Wordpress -> "Wordpress"
  | Piwik -> "Piwik"

type template = {
  weight : int;               (* relative frequency, percent *)
  aggregate : Query.aggregate;
  group_by : string list;
}

(* Attribute pools per application (used to synthesize distinct queries
   with the right attribute counts). *)

let nextcloud_templates =
  [ { weight = 40; aggregate = Query.Count; group_by = [ "mimetype" ] };
    { weight = 30; aggregate = Query.Count; group_by = [ "storage" ] };
    { weight = 20; aggregate = Query.Count; group_by = [ "share_type" ] };
    { weight = 10; aggregate = Query.Count; group_by = [ "uid_owner" ] } ]

let wordpress_templates =
  [ { weight = 47; aggregate = Query.Count; group_by = [ "post_status" ] };
    { weight = 30; aggregate = Query.Count; group_by = [ "comment_approved" ] };
    { weight = 20; aggregate = Query.Count; group_by = [ "post_type" ] };
    { weight = 2; aggregate = Query.Count; group_by = [ "post_type"; "post_status" ] };
    { weight = 1; aggregate = Query.Sum "comment_count";
      group_by = [ "post_type"; "post_status"; "post_author" ] } ]

let piwik_templates =
  [ { weight = 25; aggregate = Query.Count; group_by = [ "country" ] };
    { weight = 33; aggregate = Query.Count; group_by = [ "country"; "browser" ] };
    { weight = 25; aggregate = Query.Sum "visit_total_time";
      group_by = [ "referer_type"; "device" ] };
    { weight = 12; aggregate = Query.Count; group_by = [ "country"; "browser"; "os" ] };
    { weight = 3; aggregate = Query.Sum "visit_total_actions";
      group_by = [ "country"; "browser"; "os"; "device" ] };
    { weight = 2; aggregate = Query.Count;
      group_by = [ "country"; "browser"; "os"; "device"; "referer_type" ] } ]

let templates = function
  | Nextcloud -> nextcloud_templates
  | Wordpress -> wordpress_templates
  | Piwik -> piwik_templates

(* Weighted sample of one template. *)
let sample_template (d : Drbg.t) (ts : template list) : template =
  let total = List.fold_left (fun acc t -> acc + t.weight) 0 ts in
  let roll = Drbg.int_below d total in
  let rec pick acc = function
    | [] -> List.hd ts
    | t :: rest -> if roll < acc + t.weight then t else pick (acc + t.weight) rest
  in
  pick 0 ts

(* [generate app d n] synthesizes a log of [n] grouping queries. *)
let generate (app : application) (d : Drbg.t) (n : int) : Query.t list =
  List.init n (fun _ ->
      let t = sample_template d (templates app) in
      Query.make ~group_by:t.group_by t.aggregate)

(* Share of queries with at most [k] grouping attributes, in percent
   (the Figure 7 measurement). *)
let share_at_most (queries : Query.t list) (k : int) : float =
  let n = List.length queries in
  if n = 0 then 0.
  else begin
    let hits = List.length (List.filter (fun q -> List.length q.Query.group_by <= k) queries) in
    100. *. float_of_int hits /. float_of_int n
  end

let max_attributes (queries : Query.t list) : int =
  List.fold_left (fun acc q -> max acc (List.length q.Query.group_by)) 0 queries

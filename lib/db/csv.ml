(* Minimal CSV support (RFC 4180 subset: quoted fields, embedded commas
   and quotes; no embedded newlines). *)

let split_line (line : string) : string list =
  let n = String.length line in
  let fields = ref [] and buf = Buffer.create 16 in
  let rec go i in_quotes =
    if i >= n then begin
      fields := Buffer.contents buf :: !fields
    end
    else begin
      let c = line.[i] in
      if in_quotes then begin
        if c = '"' then
          if i + 1 < n && line.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) true
          end
          else go (i + 1) false
        else begin
          Buffer.add_char buf c;
          go (i + 1) true
        end
      end
      else if c = '"' && Buffer.length buf = 0 then go (i + 1) true
      else if c = ',' then begin
        fields := Buffer.contents buf :: !fields;
        Buffer.clear buf;
        go (i + 1) false
      end
      else begin
        Buffer.add_char buf c;
        go (i + 1) false
      end
    end
  in
  go 0 false;
  List.rev !fields

let escape_field (s : string) : string =
  if String.exists (fun c -> c = ',' || c = '"') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

(* [parse ~schema contents] reads a CSV with a header line; header names
   must match the schema order. *)
let parse ~(schema : Table.schema) (contents : string) : Table.t =
  match String.split_on_char '\n' (String.trim contents) with
  | [] -> Table.make schema
  | header :: data ->
    let names = split_line header in
    let expected = List.map (fun c -> c.Table.name) schema in
    if names <> expected then
      invalid_arg
        (Printf.sprintf "Csv.parse: header mismatch (got %s, want %s)"
           (String.concat "," names) (String.concat "," expected));
    let rows =
      List.filter_map
        (fun line ->
          if String.trim line = "" then None
          else begin
            let fields = split_line line in
            if List.length fields <> List.length schema then
              invalid_arg ("Csv.parse: bad row: " ^ line);
            Some (Array.of_list (List.map2 (fun c f -> Value.parse c.Table.ty f) schema fields))
          end)
        data
    in
    Table.of_rows schema rows

let render (t : Table.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (Table.column_names t));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat ","
           (Array.to_list (Array.map (fun v -> escape_field (Value.to_string v)) row)));
      Buffer.add_char buf '\n')
    (Table.rows t);
  Buffer.contents buf

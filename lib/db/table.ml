(* In-memory relational tables: a schema plus row-major cells. *)

type column = { name : string; ty : Value.ty }

type schema = column list

type t = {
  schema : schema;
  rows : Value.t array list;  (* in insertion order *)
}

let make (schema : schema) : t =
  let names = List.map (fun c -> c.name) schema in
  let uniq = List.sort_uniq compare names in
  if List.length uniq <> List.length names then invalid_arg "Table.make: duplicate column";
  { schema; rows = [] }

let schema t = t.schema
let row_count t = List.length t.rows
let rows t = t.rows
let column_names t = List.map (fun c -> c.name) t.schema

let column_index (t : t) (name : string) : int =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Table.column_index: no column %S" name)
    | c :: rest -> if c.name = name then i else go (i + 1) rest
  in
  go 0 t.schema

let column_ty (t : t) (name : string) : Value.ty =
  (List.nth t.schema (column_index t name)).ty

(* Append a row, checking arity and types. *)
let insert (t : t) (row : Value.t array) : t =
  if Array.length row <> List.length t.schema then invalid_arg "Table.insert: arity mismatch";
  List.iteri
    (fun i c ->
      if Value.ty_of row.(i) <> c.ty then
        invalid_arg (Printf.sprintf "Table.insert: type mismatch in column %S" c.name))
    t.schema;
  { t with rows = t.rows @ [ row ] }

(* Bulk build without the quadratic append. *)
let of_rows (schema : schema) (rows : Value.t array list) : t =
  let t = make schema in
  List.iter
    (fun row ->
      if Array.length row <> List.length schema then invalid_arg "Table.of_rows: arity mismatch")
    rows;
  { t with rows }

let get (row : Value.t array) (idx : int) : Value.t = row.(idx)

(* Distinct values of a column, sorted. *)
let distinct (t : t) (name : string) : Value.t list =
  let idx = column_index t name in
  List.sort_uniq Value.compare (List.map (fun r -> r.(idx)) t.rows)

let pp fmt (t : t) =
  Format.fprintf fmt "%s@." (String.concat " | " (column_names t));
  List.iter
    (fun row ->
      Format.fprintf fmt "%s@."
        (String.concat " | " (Array.to_list (Array.map Value.to_string row))))
    t.rows

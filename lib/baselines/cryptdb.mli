(** CryptDB-style baseline (§2, §7): deterministic encryption for
    group/filter columns + Paillier for values. Supports arbitrary GROUP
    BY combinations at the price of leaking every queried column's full
    frequency histogram — the leakage-abuse vector SAGMA removes. *)

module Z = Sagma_bigint.Bigint
module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Drbg = Sagma_crypto.Drbg
module Paillier = Sagma_paillier.Paillier

type client

type enc_row = {
  groups : string array;
  filters : string array;
  values : Paillier.ciphertext array;
}

type enc_table = { rows : enc_row array }

val setup :
  ?paillier_bits:int ->
  value_columns:string list ->
  group_columns:string list ->
  ?filter_columns:string list ->
  Drbg.t ->
  client

val det_value : client -> Value.t -> string
(** The deterministic ciphertext of a value (exposed so tests can build
    ground truth for the leakage-abuse attack). *)

val encrypt_table : client -> Table.t -> enc_table

type token

val token : client -> Query.t -> token

type group_aggregate = {
  det_group : string list;  (** deterministic group key (leaked!) *)
  sum_ct : Paillier.ciphertext option;
  count : int;              (** plaintext — CryptDB leaks it *)
}

val aggregate : client -> enc_table -> token -> group_aggregate list

type result_row = { group : Value.t list; sum : int; count : int }

val decrypt : client -> group_aggregate list -> result_row list
val query : client -> enc_table -> Query.t -> result_row list

val leaked_histogram : enc_table -> column:int -> (string * int) list
(** The static leakage: the exact histogram of a group column, readable
    off the deterministic ciphertexts without any query. *)

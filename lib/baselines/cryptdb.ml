(* CryptDB-style baseline (§2, §7; Popa et al., SOSP'11).

   Group and filter columns are encrypted deterministically so the server
   can group/compare ciphertexts directly; value columns use Paillier for
   homomorphic summation. Supports arbitrary GROUP BY combinations — at
   the price of leaking the full frequency histogram of every queried
   column, the leakage that Naveed-style attacks exploit and that SAGMA
   eliminates. *)

module Z = Sagma_bigint.Bigint
module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Drbg = Sagma_crypto.Drbg
module Det = Sagma_crypto.Deterministic
module Paillier = Sagma_paillier.Paillier

type client = {
  kp : Paillier.keypair;
  det : Det.key;
  drbg : Drbg.t;
  value_columns : string list;
  group_columns : string list;
  filter_columns : string list;
}

type enc_row = {
  groups : string array;   (* deterministic ciphertexts *)
  filters : string array;  (* deterministic ciphertexts *)
  values : Paillier.ciphertext array;
}

type enc_table = { rows : enc_row array }

let setup ?(paillier_bits = 512) ~value_columns ~group_columns ?(filter_columns = [])
    (drbg : Drbg.t) : client =
  { kp = Paillier.keygen ~bits:paillier_bits drbg;
    det = Det.gen_key drbg;
    drbg;
    value_columns;
    group_columns;
    filter_columns }

let det_value (c : client) (v : Value.t) : string = Det.encrypt c.det (Value.encode v)

let encrypt_table (c : client) (t : Table.t) : enc_table =
  let vidx = List.map (Table.column_index t) c.value_columns in
  let gidx = List.map (Table.column_index t) c.group_columns in
  let fidx = List.map (Table.column_index t) c.filter_columns in
  let rows =
    List.map
      (fun row ->
        { groups = Array.of_list (List.map (fun i -> det_value c row.(i)) gidx);
          filters = Array.of_list (List.map (fun i -> det_value c row.(i)) fidx);
          values =
            Array.of_list
              (List.map
                 (fun i -> Paillier.encrypt_int c.kp.Paillier.pk c.drbg (Value.as_int row.(i)))
                 vidx) })
      (Table.rows t)
  in
  { rows = Array.of_list rows }

type token = {
  t_value : int option;                (* value column position *)
  t_groups : int list;                 (* group column positions *)
  t_filters : (int * string) list;     (* filter position, det ciphertext *)
}

let position xs name =
  let rec go i = function
    | [] -> invalid_arg ("Cryptdb: unknown column " ^ name)
    | x :: rest -> if x = name then i else go (i + 1) rest
  in
  go 0 xs

let token (c : client) (q : Query.t) : token =
  { t_value = Option.map (position c.value_columns) (Query.value_column q.Query.aggregate);
    t_groups = List.map (position c.group_columns) q.Query.group_by;
    t_filters =
      List.map (fun (col, v) -> (position c.filter_columns col, det_value c v)) q.Query.where }

type group_aggregate = {
  det_group : string list;          (* deterministic group key (leaked!) *)
  sum_ct : Paillier.ciphertext option;
  count : int;                      (* plaintext count — CryptDB leaks it *)
}

(* Server-side: group rows by deterministic ciphertext tuples. *)
let aggregate (c : client) (et : enc_table) (tok : token) : group_aggregate list =
  let pk = c.kp.Paillier.pk in
  let tbl : (string list, Paillier.ciphertext option * int) Hashtbl.t = Hashtbl.create 32 in
  Array.iter
    (fun row ->
      let keep = List.for_all (fun (i, ct) -> row.filters.(i) = ct) tok.t_filters in
      if keep then begin
        let key = List.map (fun i -> row.groups.(i)) tok.t_groups in
        let prev_sum, prev_count =
          Option.value (Hashtbl.find_opt tbl key) ~default:(None, 0)
        in
        let sum =
          match tok.t_value with
          | None -> None
          | Some v ->
            Some
              (match prev_sum with
               | None -> row.values.(v)
               | Some acc -> Paillier.add pk acc row.values.(v))
        in
        Hashtbl.replace tbl key (sum, prev_count + 1)
      end)
    et.rows;
  Hashtbl.fold (fun det_group (sum_ct, count) acc -> { det_group; sum_ct; count } :: acc) tbl []

type result_row = { group : Value.t list; sum : int; count : int }

let decode_value (c : client) (ct : string) : Value.t =
  match Det.decrypt c.det ct with
  | None -> invalid_arg "Cryptdb.decode_value: bad ciphertext"
  | Some enc ->
    (match String.index_opt enc ':' with
     | Some 1 when enc.[0] = 'i' ->
       Value.Int (int_of_string (String.sub enc 2 (String.length enc - 2)))
     | Some 1 when enc.[0] = 's' -> Value.Str (String.sub enc 2 (String.length enc - 2))
     | _ -> invalid_arg "Cryptdb.decode_value: bad encoding")

let decrypt (c : client) (aggs : group_aggregate list) : result_row list =
  List.map
    (fun a ->
      { group = List.map (decode_value c) a.det_group;
        sum =
          (match a.sum_ct with
           | None -> 0
           | Some ct -> Z.to_int_exn (Paillier.decrypt c.kp ct));
        count = a.count })
    aggs
  |> List.sort (fun a b ->
         Stdlib.compare (List.map Value.to_string a.group) (List.map Value.to_string b.group))

let query (c : client) (et : enc_table) (q : Query.t) : result_row list =
  decrypt c (aggregate c et (token c q))

(* The leakage CryptDB concedes: the exact histogram of a group column is
   readable off the deterministic ciphertexts without any query. *)
let leaked_histogram (et : enc_table) ~(column : int) : (string * int) list =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun row ->
      let ct = row.groups.(column) in
      Hashtbl.replace tbl ct (1 + Option.value (Hashtbl.find_opt tbl ct) ~default:0))
    et.rows;
  Hashtbl.fold (fun ct c acc -> (ct, c) :: acc) tbl [] |> List.sort compare

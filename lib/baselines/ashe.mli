(** Additively Symmetric Homomorphic Encryption (ASHE), the cipher behind
    Seabed (OSDI'16): Enc_k(m, id) = m + F_k(id) mod 2^b. Addition adds
    plaintexts and accumulates the contributing ids; decryption costs one
    PRF evaluation per id — the effect behind Seabed's ρ·C client cost
    under filtering (§6.2). *)

module Drbg = Sagma_crypto.Drbg

val modulus_bits : int
val modulus : int

type key

val gen_key : Drbg.t -> key

val pad : key -> int -> int

type ciphertext = {
  body : int;
  ids : int list;  (** multiset of contributing row ids *)
}

val encrypt : key -> id:int -> int -> ciphertext
val zero : ciphertext
val add : ciphertext -> ciphertext -> ciphertext
val decrypt : key -> ciphertext -> int

val decryption_operations : ciphertext -> int
(** The client-work metric of Table 10. *)

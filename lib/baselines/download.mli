(** The trivial "download everything" baseline: semantically secure rows,
    client fetches the whole table and aggregates locally. Perfect
    security, maximal bandwidth — the yardstick §6.2 invokes for Seabed's
    filtered-query client cost. *)

module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Executor = Sagma_db.Executor
module Drbg = Sagma_crypto.Drbg

type client
type enc_table

val setup : schema:Table.schema -> Drbg.t -> client
val encrypt_table : client -> Table.t -> enc_table

val bytes_transferred : enc_table -> int
(** Bandwidth per query: the whole table, every time. *)

val query : client -> enc_table -> Query.t -> Executor.result_row list

(** The naïve pre-computation baseline (§2, §6.2): every aggregate for
    every grouping combination, group tuple and materialized filter is
    computed client-side and stored encrypted; queries are one lookup +
    one decryption (client cost 1), storage explodes combinatorially. *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Drbg = Sagma_crypto.Drbg

type client
type enc_store

val setup : Drbg.t -> client

val precompute :
  client ->
  Table.t ->
  aggregates:Query.aggregate list ->
  group_columns:string list ->
  threshold:int ->
  filters:(string * Value.t) list list ->
  enc_store
(** Materialize every aggregate over every column combination of size
    ≤ threshold, for the unfiltered table and each listed filter. *)

val storage_cells : enc_store -> int

type result_row = { group : Value.t list; sum : int; count : int }

val query : client -> enc_store -> Query.t -> result_row list option
(** [None] when the query (e.g. its filter) was not materialized. *)

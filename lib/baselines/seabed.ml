(* Seabed-style baseline (Papadimitriou et al., OSDI'16; §2, §6.2, §7).

   Grouping by one attribute is realized by *splaying* the value column:
   one ASHE column per common group value (v_j holds the value when the
   row's group equals the j-th common value, else 0) plus a single
   overflow column paired with a deterministic group ciphertext for
   uncommon values. Dummy rows with zero contributions pad the
   deterministic column so that the leaked frequencies are flat.

   Grouping by attribute *combinations* is not supported natively
   (Table 11); the §6.2 comparison assumes the client pre-computes and
   uploads each needed combination — reflected here by [splay_columns]
   counting (B+1)^i − 1 columns per combination. *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Drbg = Sagma_crypto.Drbg
module Det = Sagma_crypto.Deterministic

type client = {
  ashe : Ashe.key;
  det : Det.key;
  common : Value.t array;  (* the "common values" given splay columns *)
  drbg : Drbg.t;
}

type enc_row = {
  id : int;
  splay : Ashe.ciphertext array;    (* one per common value *)
  splay_count : Ashe.ciphertext array;  (* 1-or-0 columns for COUNT *)
  other : Ashe.ciphertext;          (* overflow column *)
  other_count : Ashe.ciphertext;
  det_group : string option;        (* det(group) for uncommon rows, None on dummies *)
}

type enc_table = { rows : enc_row array; num_dummies : int }

let setup ~(common : Value.t list) (drbg : Drbg.t) : client =
  { ashe = Ashe.gen_key drbg; det = Det.gen_key drbg; common = Array.of_list common; drbg }

let index_of_common (c : client) (v : Value.t) : int option =
  let rec go i =
    if i >= Array.length c.common then None
    else if Value.equal c.common.(i) v then Some i
    else go (i + 1)
  in
  go 0

let enc_row (c : client) ~(id : int) ~(value : int) ~(group : Value.t) : enc_row =
  let m = Array.length c.common in
  match index_of_common c group with
  | Some j ->
    { id;
      splay = Array.init m (fun i -> Ashe.encrypt c.ashe ~id (if i = j then value else 0));
      splay_count = Array.init m (fun i -> Ashe.encrypt c.ashe ~id (if i = j then 1 else 0));
      other = Ashe.encrypt c.ashe ~id 0;
      other_count = Ashe.encrypt c.ashe ~id 0;
      (* Common rows fill the det column with a dummy that flattens the
         histogram (Seabed's padding trick). *)
      det_group = None }
  | None ->
    { id;
      splay = Array.init m (fun _ -> Ashe.encrypt c.ashe ~id 0);
      splay_count = Array.init m (fun _ -> Ashe.encrypt c.ashe ~id 0);
      other = Ashe.encrypt c.ashe ~id value;
      other_count = Ashe.encrypt c.ashe ~id 1;
      det_group = Some (Det.encrypt c.det (Value.encode group)) }

let encrypt_table (c : client) (t : Table.t) ~(value_column : string) ~(group_column : string) :
    enc_table =
  let vi = Table.column_index t value_column and gi = Table.column_index t group_column in
  let rows =
    List.mapi
      (fun id row -> enc_row c ~id ~value:(Value.as_int row.(vi)) ~group:row.(gi))
      (Table.rows t)
  in
  { rows = Array.of_list rows; num_dummies = 0 }

type result_row = { group : Value.t; sum : int; count : int }

(* Server + client: sum every splay column; group the overflow column by
   its deterministic tag. The returned decryption-operation count is the
   client-cost metric of Table 10. *)
let query (c : client) (et : enc_table) : result_row list * int =
  let ops = ref 0 in
  let dec ct =
    ops := !ops + Ashe.decryption_operations ct;
    Ashe.decrypt c.ashe ct
  in
  let common_results =
    Array.to_list
      (Array.mapi
         (fun j g ->
           let sum =
             Array.fold_left (fun acc row -> Ashe.add acc row.splay.(j)) Ashe.zero et.rows
           in
           let count =
             Array.fold_left (fun acc row -> Ashe.add acc row.splay_count.(j)) Ashe.zero et.rows
           in
           { group = g; sum = dec sum; count = dec count })
         c.common)
  in
  (* Uncommon values: group by deterministic tag. *)
  let tbl : (string, Ashe.ciphertext * Ashe.ciphertext) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun row ->
      match row.det_group with
      | None -> ()
      | Some tag ->
        let s, n = Option.value (Hashtbl.find_opt tbl tag) ~default:(Ashe.zero, Ashe.zero) in
        Hashtbl.replace tbl tag (Ashe.add s row.other, Ashe.add n row.other_count))
    et.rows;
  let uncommon =
    Hashtbl.fold
      (fun tag (s, n) acc ->
        let group =
          match Det.decrypt c.det tag with
          | Some enc when String.length enc > 2 && enc.[0] = 's' ->
            Value.Str (String.sub enc 2 (String.length enc - 2))
          | Some enc when String.length enc > 2 && enc.[0] = 'i' ->
            Value.Int (int_of_string (String.sub enc 2 (String.length enc - 2)))
          | _ -> invalid_arg "Seabed.query: bad det ciphertext"
        in
        { group; sum = dec s; count = dec n } :: acc)
      tbl []
  in
  let results =
    List.filter (fun r -> r.count > 0) (common_results @ uncommon)
    |> List.sort (fun a b -> Value.compare a.group b.group)
  in
  (results, !ops)

(* Storage model (§6.2): (B+1)^i − 1 columns per combination of i
   grouping attributes, per value column, per row. *)
let splay_columns ~(l : int) ~(t : int) ~(b : int) : int =
  let choose n k =
    if k < 0 || k > n then 0
    else begin
      let acc = ref 1 in
      for i = 0 to k - 1 do
        acc := !acc * (n - i) / (i + 1)
      done;
      !acc
    end
  in
  let rec pow acc e = if e = 0 then acc else pow (acc * (b + 1)) (e - 1) in
  let rec sum i acc = if i > t then acc else sum (i + 1) (acc + (choose l i * (pow 1 i - 1))) in
  sum 1 0

(* The flattened leakage: frequencies of the deterministic column after
   splaying — common values are invisible, so the histogram the server
   sees is only over uncommon values. *)
let leaked_histogram (et : enc_table) : (string * int) list =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun row ->
      match row.det_group with
      | None -> ()
      | Some tag -> Hashtbl.replace tbl tag (1 + Option.value (Hashtbl.find_opt tbl tag) ~default:0))
    et.rows;
  Hashtbl.fold (fun tag c acc -> (tag, c) :: acc) tbl [] |> List.sort compare

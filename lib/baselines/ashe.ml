(* Additively Symmetric Homomorphic Encryption (ASHE), the cipher behind
   Seabed (Papadimitriou et al., OSDI'16).

   Enc_k(m, id) = m + F_k(id) (mod 2^b). Addition of ciphertexts adds the
   plaintexts and accumulates the id multiset; decryption subtracts the
   pads Σ F_k(id). Symmetric-key and far cheaper than Paillier, but the
   client's decryption work grows with the id set — the effect that makes
   Seabed degrade under selective WHERE clauses (§6.2: client cost
   ρ_i · C). *)

module Prf = Sagma_crypto.Prf
module Drbg = Sagma_crypto.Drbg

let modulus_bits = 40
let modulus = 1 lsl modulus_bits
let mask = modulus - 1

type key = Prf.key

let gen_key (drbg : Drbg.t) : key = Prf.gen_key drbg

let pad (k : key) (id : int) : int = Prf.eval_int k (string_of_int id) ~bound:modulus

type ciphertext = {
  body : int;      (* Σ m + Σ pads, mod 2^b *)
  ids : int list;  (* multiset of contributing row ids *)
}

let encrypt (k : key) ~(id : int) (m : int) : ciphertext =
  if m < 0 || m >= modulus then invalid_arg "Ashe.encrypt: out of range";
  { body = (m + pad k id) land mask; ids = [ id ] }

let zero : ciphertext = { body = 0; ids = [] }

let add (a : ciphertext) (b : ciphertext) : ciphertext =
  { body = (a.body + b.body) land mask; ids = List.rev_append a.ids b.ids }

(* Client-side decryption: one PRF evaluation per contributing id. *)
let decrypt (k : key) (c : ciphertext) : int =
  let pads = List.fold_left (fun acc id -> (acc + pad k id) land mask) 0 c.ids in
  (c.body - pads) land mask

(* The client work metric Table 10 tracks. *)
let decryption_operations (c : ciphertext) : int = List.length c.ids

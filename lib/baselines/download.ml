(* The trivial "download everything" baseline: rows are stored under
   semantically secure symmetric encryption; the client fetches the whole
   table, decrypts and aggregates locally. Perfect security, no server
   computation, maximal bandwidth — the yardstick §6.2 invokes when it
   notes Seabed's filtered-query client cost can exceed even this. *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Executor = Sagma_db.Executor
module Drbg = Sagma_crypto.Drbg
module Secretbox = Sagma_crypto.Secretbox

type client = { key : Secretbox.key; drbg : Drbg.t; schema : Table.schema }

type enc_table = { rows : string array }

let setup ~(schema : Table.schema) (drbg : Drbg.t) : client =
  { key = Secretbox.gen_key drbg; drbg; schema }

let encode_row (row : Value.t array) : string =
  String.concat "\x00" (Array.to_list (Array.map Value.encode row))

let decode_row (c : client) (s : string) : Value.t array =
  let fields = String.split_on_char '\x00' s in
  Array.of_list
    (List.map2
       (fun (col : Table.column) f ->
         match col.Table.ty with
         | Value.TInt -> Value.Int (int_of_string (String.sub f 2 (String.length f - 2)))
         | Value.TStr -> Value.Str (String.sub f 2 (String.length f - 2)))
       c.schema fields)

let encrypt_table (c : client) (t : Table.t) : enc_table =
  { rows =
      Array.of_list (List.map (fun r -> Secretbox.seal c.key c.drbg (encode_row r)) (Table.rows t)) }

(* Bandwidth the client pays per query: the whole table, every time. *)
let bytes_transferred (et : enc_table) : int =
  Array.fold_left (fun acc r -> acc + String.length r) 0 et.rows

let query (c : client) (et : enc_table) (q : Query.t) : Executor.result_row list =
  let rows = Array.to_list (Array.map (fun r -> decode_row c (Secretbox.open_exn c.key r)) et.rows) in
  Executor.run (Table.of_rows c.schema rows) q

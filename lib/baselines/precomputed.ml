(* The naïve pre-computation baseline (§2, §6.2).

   Every aggregate for every grouping-attribute combination (size ≤ t),
   every group-value tuple and every supported filtering clause is
   computed client-side at encryption time and stored encrypted; a query
   is a dictionary lookup plus one decryption (client cost 1, Table 10).
   The storage explodes combinatorially — that is the point of the
   comparison. *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Executor = Sagma_db.Executor
module Drbg = Sagma_crypto.Drbg
module Secretbox = Sagma_crypto.Secretbox

type client = { key : Secretbox.key; drbg : Drbg.t }

type enc_store = {
  cells : (string, string) Hashtbl.t;  (* query fingerprint -> sealed result *)
}

let setup (drbg : Drbg.t) : client = { key = Secretbox.gen_key drbg; drbg }

let fingerprint (q : Query.t) : string =
  Query.to_sql q

let seal_results (c : client) (results : Executor.result_row list) : string =
  let body =
    String.concat ";"
      (List.map
         (fun r ->
           Printf.sprintf "%s=%d,%d"
             (String.concat "|" (List.map Value.encode r.Executor.group))
             r.Executor.sum r.Executor.count)
         results)
  in
  Secretbox.seal c.key c.drbg body

(* All subsets of [cols] with size in [1, t]. *)
let rec subsets_upto t cols =
  match cols with
  | [] -> [ [] ]
  | x :: rest ->
    let without = subsets_upto t rest in
    let with_x =
      List.filter_map
        (fun s -> if List.length s < t then Some (x :: s) else None)
        without
    in
    with_x @ without

(* Pre-compute every aggregate. [filter_values] lists the filtering
   clauses to materialize (the paper notes the full space is impractical —
   callers choose a finite set). *)
let precompute (c : client) (t : Table.t) ~(aggregates : Query.aggregate list)
    ~(group_columns : string list) ~(threshold : int)
    ~(filters : (string * Value.t) list list) : enc_store =
  let cells = Hashtbl.create 256 in
  let combos = List.filter (fun s -> s <> []) (subsets_upto threshold group_columns) in
  List.iter
    (fun agg ->
      List.iter
        (fun combo ->
          List.iter
            (fun where ->
              let q = Query.make ~where ~group_by:combo agg in
              Hashtbl.replace cells (fingerprint q) (seal_results c (Executor.run t q)))
            ([] :: filters))
        combos)
    aggregates;
  { cells }

let storage_cells (s : enc_store) : int = Hashtbl.length s.cells

type result_row = { group : Value.t list; sum : int; count : int }

let parse_value (s : string) : Value.t =
  if String.length s >= 2 && s.[0] = 'i' && s.[1] = ':' then
    Value.Int (int_of_string (String.sub s 2 (String.length s - 2)))
  else if String.length s >= 2 && s.[0] = 's' && s.[1] = ':' then
    Value.Str (String.sub s 2 (String.length s - 2))
  else invalid_arg "Precomputed.parse_value"

(* Query = lookup + single decryption. *)
let query (c : client) (store : enc_store) (q : Query.t) : result_row list option =
  match Hashtbl.find_opt store.cells (fingerprint q) with
  | None -> None
  | Some sealed ->
    let body = Secretbox.open_exn c.key sealed in
    if body = "" then Some []
    else
      Some
        (List.map
           (fun cell ->
             match String.split_on_char '=' cell with
             | [ groups; nums ] ->
               let group = List.map parse_value (String.split_on_char '|' groups) in
               (match String.split_on_char ',' nums with
                | [ s; n ] -> { group; sum = int_of_string s; count = int_of_string n }
                | _ -> invalid_arg "Precomputed.query: bad cell")
             | _ -> invalid_arg "Precomputed.query: bad cell")
           (String.split_on_char ';' body))

(** Seabed-style baseline (OSDI'16; §2, §6.2, §7): ASHE value columns
    splayed per common group value, an overflow column with deterministic
    tags for uncommon values. Single-attribute grouping natively
    (Table 11); multi-attribute support assumes client-side
    pre-computation, reflected in {!splay_columns}. *)

module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Drbg = Sagma_crypto.Drbg

type client

type enc_row = {
  id : int;
  splay : Ashe.ciphertext array;
  splay_count : Ashe.ciphertext array;
  other : Ashe.ciphertext;
  other_count : Ashe.ciphertext;
  det_group : string option;  (** None for rows with common values *)
}

type enc_table = { rows : enc_row array; num_dummies : int }

val setup : common:Value.t list -> Drbg.t -> client

val enc_row : client -> id:int -> value:int -> group:Value.t -> enc_row

val encrypt_table : client -> Table.t -> value_column:string -> group_column:string -> enc_table

type result_row = { group : Value.t; sum : int; count : int }

val query : client -> enc_table -> result_row list * int
(** Returns the per-group results and the number of client-side
    decryption operations (the Table 10 metric). *)

val splay_columns : l:int -> t:int -> b:int -> int
(** §6.2 storage model: (B+1)^i − 1 columns per combination of i
    grouping attributes. *)

val leaked_histogram : enc_table -> (string * int) list
(** Only uncommon values appear in the deterministic column — the
    flattening Seabed trades storage for. *)

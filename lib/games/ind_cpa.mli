(** Left-or-right IND-CPA as an executable game.

    The challenger generates a key, flips a bit [b], and exposes an
    LR-encryption oracle: the adversary submits [(m0, m1)] pairs and
    receives the encryption of [m_b] as bytes. The built-in adversary
    asks for the challenge [(0, 1)], probes the oracle a second time,
    and guesses from the low bit of the ciphertext's last byte — a
    feature that is a fair coin for any semantically secure scheme but
    reads the plaintext straight off the deliberately leaky variants.

    Honest instances ({!bgn}, {!paillier}) must come out statistically
    indistinguishable from guessing; the leaky mutants ({!leaky_bgn},
    {!leaky_paillier} — real encryption with the plaintext's low bit
    copied over the ciphertext's last bit) must be distinguished, which
    proves the game can actually lose. *)

type scheme
(** A byte-level encryption scheme under test: one-time key generation
    plus an [int -> bytes] encryptor. *)

val scheme_name : scheme -> string

val bgn : scheme
(** BGN level-1 encryption, ciphertext = serialized curve point. *)

val paillier : scheme
(** Paillier, ciphertext = big-endian bytes of c ∈ Z_{n²}. *)

val leaky_bgn : scheme
(** Mutation check: BGN with [m land 1] copied into the ciphertext's
    last bit. The adversary must win this game. *)

val leaky_paillier : scheme
(** Same mutation for Paillier. *)

val game : ?trials:int -> ?confidence:float -> scheme -> seed:string -> Game.outcome
(** Play the LR game; trial [i] replays from seed ["seed@i"]. The game
    also enforces oracle hygiene per trial: the adversary's challenge
    query is recorded, and its query count stays within the oracle
    budget (a budget violation forfeits the trial). *)

(** The adversary-game trial driver.

    A game is a function of a per-trial DRBG that plays one full
    challenger-vs-adversary experiment — flip the challenge bit, run the
    adversary against its oracles, return whether the adversary guessed
    the bit. {!play} runs [trials] independent experiments and estimates
    the adversary's distinguishing advantage with a Wilson score
    confidence bound ({!Sagma_prop.Runner.wilson_interval}).

    Seeding follows the property runner's convention: trial [i] draws
    from a DRBG seeded with [name ^ "|" ^ case_seed seed i], so any
    single trial replays verbatim as trial 0 of a run seeded with the
    printed ["seed@i"] string.

    Interpretation: the scheme holds up iff the blind-guess rate 1/2
    lies inside the Wilson interval of the observed win rate
    ([distinguished = false]); a deliberately broken scheme must push
    the interval past 1/2 ([distinguished = true]) — that check is what
    gives the honest games teeth. *)

type outcome = {
  game : string;
  trials : int;
  wins : int;
  win_rate : float;
  advantage : float;   (** |win_rate - 1/2| *)
  lo : float;          (** Wilson interval at [confidence] *)
  hi : float;
  bound : float;       (** interval half-width — the statistical noise floor *)
  confidence : float;
  distinguished : bool;  (** the interval excludes 1/2 *)
  seed : string;
  winning_seeds : string list;
      (** replayable per-trial seeds of the first few adversary wins *)
}

val play :
  ?trials:int ->
  ?confidence:float ->
  name:string ->
  seed:string ->
  (Sagma_crypto.Drbg.t -> bool) ->
  outcome
(** Run the game. [trials] defaults to 64, [confidence] to 0.999
    (conservative: honest games must not flake in CI). *)

val report : outcome -> string
(** One human-readable block: win rate, advantage vs. bound, verdict,
    and a replayable seed for the first adversary win. *)

val json : outcome -> string
(** One JSON object per game (advantage, bound, interval, seeds) — the
    shape the CI games-smoke artifact aggregates. *)

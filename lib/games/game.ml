(* Trial driver: repeat one challenger-vs-adversary experiment under
   per-trial DRBG seeds (the property runner's name|seed@i convention),
   then decide whether the observed win rate is statistically
   distinguishable from a fair coin. *)

module Drbg = Sagma_crypto.Drbg
module R = Sagma_prop.Runner

type outcome = {
  game : string;
  trials : int;
  wins : int;
  win_rate : float;
  advantage : float;
  lo : float;
  hi : float;
  bound : float;
  confidence : float;
  distinguished : bool;
  seed : string;
  winning_seeds : string list;
}

let max_recorded_wins = 5

let play ?(trials = 64) ?(confidence = 0.999) ~(name : string) ~(seed : string)
    (trial : Drbg.t -> bool) : outcome =
  let wins = ref 0 in
  let winning = ref [] in
  for i = 0 to trials - 1 do
    let cs = R.case_seed seed i in
    let drbg = Drbg.create (name ^ "|" ^ cs) in
    if trial drbg then begin
      incr wins;
      if List.length !winning < max_recorded_wins then winning := cs :: !winning
    end
  done;
  let wins = !wins in
  let z = R.z_for_confidence confidence in
  let lo, hi = R.wilson_interval ~wins ~trials ~z in
  { game = name;
    trials;
    wins;
    win_rate = float_of_int wins /. float_of_int (max 1 trials);
    advantage = R.advantage ~wins ~trials;
    lo;
    hi;
    bound = (hi -. lo) /. 2.0;
    confidence;
    distinguished = lo > 0.5 || hi < 0.5;
    seed;
    winning_seeds = List.rev !winning }

let report (o : outcome) : string =
  let verdict =
    if o.distinguished then "DISTINGUISHED (advantage beyond the bound)"
    else "indistinguishable from guessing"
  in
  let replay =
    match o.winning_seeds with
    | [] -> ""
    | cs :: _ ->
      Printf.sprintf
        "\n    replay first win: SAGMA_GAMES_SEED=%S SAGMA_GAMES_TRIALS=1 (trial 0)" cs
  in
  Printf.sprintf
    "%s: %d/%d wins (rate %.3f, advantage %.3f, Wilson %.1f%% interval [%.3f, %.3f]) — %s%s"
    o.game o.wins o.trials o.win_rate o.advantage (o.confidence *. 100.0) o.lo o.hi
    verdict replay

let json (o : outcome) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b "{";
  Buffer.add_string b (Printf.sprintf "\"game\": %S, " o.game);
  Buffer.add_string b (Printf.sprintf "\"trials\": %d, \"wins\": %d, " o.trials o.wins);
  Buffer.add_string b
    (Printf.sprintf "\"win_rate\": %.6f, \"advantage\": %.6f, \"bound\": %.6f, "
       o.win_rate o.advantage o.bound);
  Buffer.add_string b
    (Printf.sprintf "\"lo\": %.6f, \"hi\": %.6f, \"confidence\": %.4f, " o.lo o.hi
       o.confidence);
  Buffer.add_string b
    (Printf.sprintf "\"distinguished\": %b, \"seed\": %S, " o.distinguished o.seed);
  Buffer.add_string b
    (Printf.sprintf "\"winning_seeds\": [%s]"
       (String.concat ", " (List.map (Printf.sprintf "%S") o.winning_seeds)));
  Buffer.add_string b "}";
  Buffer.contents b

(* Left-or-right IND-CPA over byte-level schemes.

   The distinguishing feature is the low bit of the ciphertext's last
   byte: for BGN that is the parity of the point's y-coordinate, for
   Paillier the parity of c mod n² — a fair coin under fresh blinding.
   The leaky mutants overwrite exactly that bit with the plaintext's low
   bit, so the same adversary that draws ~1/2 against the real schemes
   wins ~every trial against them. *)

module Drbg = Sagma_crypto.Drbg
module Z = Sagma_bigint.Bigint
module Bgn = Sagma_bgn.Bgn
module Paillier = Sagma_paillier.Paillier
module W = Sagma_wire.Wire

type scheme = {
  name : string;
  setup : Drbg.t -> (Drbg.t -> int -> string);
      (* key generation, then an encryptor to ciphertext bytes *)
}

let scheme_name (s : scheme) : string = s.name

(* Key sizes match the repository's test defaults: far below the
   paper's 1024-bit production setting, large enough that ciphertext
   bytes carry no small-modulus artifacts. *)
let bgn_bits = 64
let paillier_bits = 256

let bgn : scheme =
  { name = "ind-cpa-bgn";
    setup =
      (fun d ->
        let kp = Bgn.keygen ~bits:bgn_bits d in
        fun d m -> W.encode Sagma.Serialize.put_point (Bgn.enc1_int kp.Bgn.pk d m)) }

let paillier : scheme =
  { name = "ind-cpa-paillier";
    setup =
      (fun d ->
        let kp = Paillier.keygen ~bits:paillier_bits d in
        fun d m -> Z.to_bytes_be (Paillier.encrypt_int kp.Paillier.pk d m)) }

(* The mutation: honest encryption, then the plaintext's low bit copied
   over the ciphertext's last bit — the "stubbed encryption leaking a
   plaintext bit" the games harness must catch. *)
let leak_bit (m : int) (ct : string) : string =
  if ct = "" then String.make 1 (Char.chr (m land 1))
  else begin
    let b = Bytes.of_string ct in
    let last = Bytes.length b - 1 in
    Bytes.set b last (Char.chr ((Char.code (Bytes.get b last) land 0xfe) lor (m land 1)));
    Bytes.to_string b
  end

let leaky (s : scheme) : scheme =
  { name = s.name ^ "-leaky";
    setup =
      (fun d ->
        let enc = s.setup d in
        fun d m -> leak_bit m (enc d m)) }

let leaky_bgn = leaky bgn
let leaky_paillier = leaky paillier

(* The built-in adversary: challenge on (0, 1), one extra probe (which
   must be visible in the oracle transcript), guess from the feature
   bit. *)
let feature (ct : string) : bool =
  ct <> "" && Char.code ct.[String.length ct - 1] land 1 = 1

let game ?trials ?confidence (s : scheme) ~(seed : string) : Game.outcome =
  (* Key generation is per-game (deterministic from the game seed), not
     per-trial: the IND-CPA experiment fixes one key and gives the
     adversary oracle access under it. *)
  let enc = s.setup (Drbg.create (s.name ^ "|" ^ seed ^ "|setup")) in
  Game.play ?trials ?confidence ~name:s.name ~seed (fun d ->
      let b = Drbg.bool d in
      let lr =
        Oracle.make ~name:(s.name ^ ".lr") ~budget:8 (fun (m0, m1) ->
            enc d (if b then m1 else m0))
      in
      (* Adversary: one challenge query, one decoy probe. *)
      let challenge = Oracle.call lr (0, 1) in
      ignore (Oracle.call lr (7, 7));
      let guess = feature challenge in
      (* Oracle hygiene: the challenge really went through the recorded
         path and the budget held. An adversary that cheats forfeits. *)
      if Oracle.count lr <> 2 || not (Oracle.queried lr (fun q -> q = (0, 1))) then false
      else guess = b)

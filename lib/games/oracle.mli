(** Instrumented oracles for the security games.

    A game never hands the adversary a raw function: it wraps the
    challenger's interface in an [('q, 'r) t] that counts calls, records
    the full query/response transcript in call order, and enforces an
    optional query budget — the OCaml port of haskell-uc's
    [runWithOracle]/[oracleMapM] shape, where the game inspects after
    the fact how (and how often) its oracle was used. *)

exception Budget_exceeded of string * int
(** [(oracle name, budget)] — raised by {!call} once the budget is
    exhausted; an adversary exceeding its allotted queries forfeits. *)

type ('q, 'r) t

val make : ?name:string -> ?budget:int -> ('q -> 'r) -> ('q, 'r) t
(** Wrap a challenger function. [budget] bounds the number of calls
    (unbounded when omitted). *)

val call : ('q, 'r) t -> 'q -> 'r
(** Answer one query, recording it. @raise Budget_exceeded *)

val count : ('q, 'r) t -> int
(** Queries answered so far. *)

val transcript : ('q, 'r) t -> ('q * 'r) list
(** Every (query, response) pair, in call order. *)

val queried : ('q, 'r) t -> ('q -> bool) -> bool
(** Was some recorded query satisfying the predicate made? The freshness
    check of forgery-style games (gameEuCma's "never queried"). *)

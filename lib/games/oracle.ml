(* Instrumented oracle wrapper: the challenger side of every game routes
   adversary access through one of these, so the game can afterwards
   check how the oracle was used (query count, budget, freshness). *)

exception Budget_exceeded of string * int

type ('q, 'r) t = {
  name : string;
  budget : int option;
  answer : 'q -> 'r;
  mutable calls : int;
  mutable log : ('q * 'r) list;  (* newest first *)
}

let make ?(name = "oracle") ?budget (answer : 'q -> 'r) : ('q, 'r) t =
  { name; budget; answer; calls = 0; log = [] }

let call (o : ('q, 'r) t) (q : 'q) : 'r =
  (match o.budget with
   | Some b when o.calls >= b -> raise (Budget_exceeded (o.name, b))
   | _ -> ());
  let r = o.answer q in
  o.calls <- o.calls + 1;
  o.log <- (q, r) :: o.log;
  r

let count (o : ('q, 'r) t) : int = o.calls

let transcript (o : ('q, 'r) t) : ('q * 'r) list = List.rev o.log

let queried (o : ('q, 'r) t) (p : 'q -> bool) : bool =
  List.exists (fun (q, _) -> p q) o.log

(* The §4.2 simulator-indistinguishability experiment as a runnable
   game. One trial = one full SAGMA lifecycle: fresh client keys,
   encrypt one of the adversary's two equal-leakage tables (or run the
   simulator on the declared leakage), hand the adversary the server's
   view, score its guess. *)

module Drbg = Sagma_crypto.Drbg
module Value = Sagma_db.Value
module Table = Sagma_db.Table
module Query = Sagma_db.Query
module Sse = Sagma_sse.Sse
module Dbgen = Sagma_prop.Dbgen
module W = Sagma_wire.Wire
open Sagma

type variant = Honest | Leaky_sse

module Int_set = Set.Make (Int)

(* --- the adversary's chosen instance ---------------------------------------

   An equal-leakage (table, query list) pair plus the public context the
   adversary keeps: the dummy plan (it chose the padding) and which
   query scans the full table. *)

type instance = {
  config : Config.t;
  domains : (string * Value.t list) list;
  t0 : Table.t;
  t1 : Table.t;
  queries : Query.t list;
  dummy_groups : Value.t array list;
  full_scan : int;    (* index into [queries] of the full GROUP BY scan *)
  num_real : int;     (* rows per table (they agree) *)
  num_total : int;    (* + dummy rows: the leaked row count *)
}

let instance_of_seed (seed : string) : instance =
  let d = Drbg.create ("sim-ind-instance|" ^ seed) in
  let sc, t1 = Dbgen.equal_leakage_pair_gen ~max_rows:6 ~max_queries:2 () d in
  let config =
    Config.make ~bucket_size:sc.Dbgen.bucket_size ~max_group_attrs:sc.Dbgen.max_group_attrs
      ~filter_columns:(List.map fst sc.Dbgen.filter_domains)
      ~value_columns:sc.Dbgen.value_columns
      ~group_columns:(List.map fst sc.Dbgen.group_domains) ()
  in
  (* The coverage detector needs one query whose bucket tokens touch
     every bucket of a column — a plain full-table GROUP BY. *)
  let scan = Query.make ~group_by:[ fst (List.hd sc.Dbgen.group_domains) ] Query.Count in
  let queries = sc.Dbgen.queries @ [ scan ] in
  (* Two dummy rows: first and last member of each group domain — the
     §5 padding whose presence in the access patterns is exactly what
     the leaky variant drops. *)
  let pick f = Array.of_list (List.map (fun (_, dom) -> f dom) sc.Dbgen.group_domains) in
  let dummy_groups = [ pick List.hd; pick (fun dom -> List.nth dom (List.length dom - 1)) ] in
  let num_real = Table.row_count sc.Dbgen.table in
  { config;
    domains = sc.Dbgen.group_domains;
    t0 = sc.Dbgen.table;
    t1;
    queries;
    dummy_groups;
    full_scan = List.length queries - 1;
    num_real;
    num_total = num_real + List.length dummy_groups }

(* --- the adversary's view ---------------------------------------------------

   What the server stores and observes, with PRF token tags
   canonicalized to first-occurrence classes: real and simulated
   transcripts never share literal tags (different keys), only the
   repetition structure — the search pattern — is information. *)

type transcript = {
  rows : string array;                (* serialized per-row ciphertexts *)
  index_entries : int;
  obs : (int * int list) list list;   (* per query: (tag class, access pattern) *)
}

let canonicalize (per_query : (string * int list) list list) : (int * int list) list list =
  let classes : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.map
    (List.map (fun (tag, matches) ->
         let c =
           match Hashtbl.find_opt classes tag with
           | Some c -> c
           | None ->
             let c = Hashtbl.length classes in
             Hashtbl.add classes tag c;
             c
         in
         (c, matches)))
    per_query

let real_transcript ~(leaky : bool) (inst : instance) (enc : Scheme.enc_table)
    (tokens : Scheme.token list) : transcript =
  let leak = Leakage.profile enc tokens in
  let censor matches =
    (* The leaky server's index never lists dummy rows (ids at and past
       [num_real]): its observable access patterns under-report. *)
    if leaky then List.filter (fun id -> id < inst.num_real) matches else matches
  in
  { rows = Array.map (W.encode Serialize.put_enc_row) enc.Scheme.rows;
    index_entries = Sse.size enc.Scheme.index;
    obs =
      canonicalize
        (List.map
           (fun (q : Leakage.query_leakage) ->
             List.map
               (fun (o : Leakage.sse_observation) ->
                 (o.Leakage.token_tag, censor o.Leakage.matches))
               q.Leakage.observations)
           leak.Leakage.queries) }

let sim_transcript (leak : Leakage.t) (sim : Leakage.simulated) : transcript =
  (* The simulated view is produced the same way a server would: search
     the simulated index with the simulated tokens — not by echoing the
     leakage — so a simulator that failed to replay the leaked patterns
     would be distinguishable here. *)
  { rows = Array.map (W.encode Serialize.put_enc_row) sim.Leakage.sim_rows;
    index_entries = Sse.size sim.Leakage.sim_index;
    obs =
      canonicalize
        (List.map
           (fun (q : Leakage.query_leakage) ->
             List.map
               (fun (o : Leakage.sse_observation) ->
                 let matches =
                   match List.assoc_opt o.Leakage.token_tag sim.Leakage.sim_tokens with
                   | Some tok -> Sse.search sim.Leakage.sim_index tok
                   | None -> []
                 in
                 (o.Leakage.token_tag, matches))
               q.Leakage.observations)
           leak.Leakage.queries) }

(* --- the distinguisher ------------------------------------------------------

   Checks the transcript against what the declared leakage licenses; a
   violation can only come from a deviating real implementation, so it
   answers "real" — otherwise "simulated". Against an honest scheme
   neither world violates anything and the guess carries no
   information. *)

let guesses_real (inst : instance) (tr : transcript) : bool =
  let full_scan_covers =
    let covered =
      List.fold_left
        (fun acc (_, matches) -> List.fold_left (fun acc id -> Int_set.add id acc) acc matches)
        Int_set.empty
        (List.nth tr.obs inst.full_scan)
    in
    Int_set.cardinal covered = inst.num_total
  in
  let duplicate_rows =
    let seen = Hashtbl.create (Array.length tr.rows) in
    Array.exists
      (fun bytes ->
        if Hashtbl.mem seen bytes then true
        else begin
          Hashtbl.add seen bytes ();
          false
        end)
      tr.rows
  in
  (not full_scan_covers) || duplicate_rows

(* --- the game --------------------------------------------------------------- *)

let game ?trials ?confidence ?(variant = Honest) ~(seed : string) () : Game.outcome =
  let name =
    match variant with Honest -> "sim-ind-4.2" | Leaky_sse -> "sim-ind-4.2-leaky-sse"
  in
  let inst = instance_of_seed seed in
  let leaky = variant = Leaky_sse in
  Game.play ?trials ?confidence ~name ~seed (fun d ->
      let client = Scheme.setup inst.config ~domains:inst.domains d in
      let tokens = List.map (Scheme.token client) inst.queries in
      let real = Drbg.bool d in
      let tr =
        if real then begin
          (* A second hidden coin picks which of the adversary's two
             equal-leakage tables gets encrypted: with equal leakage the
             transcript must not depend on the choice, so revealing
             nothing extra to the adversary. *)
          let t = if Drbg.bool d then inst.t1 else inst.t0 in
          let enc = Scheme.encrypt_table ~dummy_groups:inst.dummy_groups client t in
          real_transcript ~leaky inst enc tokens
        end
        else begin
          let enc = Scheme.encrypt_table ~dummy_groups:inst.dummy_groups client inst.t0 in
          let leak = Leakage.profile enc tokens in
          let sim = Leakage.simulate client.Scheme.pp.Scheme.bgn_pk leak d in
          sim_transcript leak sim
        end
      in
      guesses_real inst tr = real)

(* Binary serialization combinators.

   A minimal, dependency-free codec layer used to put keys, encrypted
   tables, tokens and aggregates on the wire (lib/sagma/serialize.ml and
   the client/server protocol). Encoding is canonical: big-endian fixed
   u32/u64 words and u32-length-prefixed byte strings, so every codec is
   deterministic and roundtrips byte-identically. *)

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* --- sinks ---------------------------------------------------------------- *)

type sink = Buffer.t

let sink () : sink = Buffer.create 256

let contents (s : sink) : string = Buffer.contents s

let put_u8 (s : sink) (v : int) : unit =
  if v < 0 || v > 0xff then invalid_arg "Wire.put_u8";
  Buffer.add_char s (Char.chr v)

let put_u32 (s : sink) (v : int) : unit =
  if v < 0 || v > 0xffffffff then invalid_arg "Wire.put_u32";
  for i = 3 downto 0 do
    Buffer.add_char s (Char.chr ((v lsr (8 * i)) land 0xff))
  done

(* Non-negative 63-bit integer. *)
let put_u62 (s : sink) (v : int) : unit =
  if v < 0 then invalid_arg "Wire.put_u62: negative";
  for i = 7 downto 0 do
    Buffer.add_char s (Char.chr ((v lsr (8 * i)) land 0xff))
  done

(* Signed native int (sign byte + magnitude; [min_int] excluded). *)
let put_int (s : sink) (v : int) : unit =
  if v = min_int then invalid_arg "Wire.put_int: min_int";
  put_u8 s (if v < 0 then 1 else 0);
  put_u62 s (abs v)

let put_bool (s : sink) (v : bool) : unit = put_u8 s (if v then 1 else 0)

(* IEEE-754 double as its 8 raw bits, big-endian: canonical (bit-exact
   roundtrip, NaN payloads included) without a textual detour. *)
let put_f64 (s : sink) (v : float) : unit =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    Buffer.add_char s
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let put_bytes (s : sink) (v : string) : unit =
  put_u32 s (String.length v);
  Buffer.add_string s v

let put_list (s : sink) (put : sink -> 'a -> unit) (v : 'a list) : unit =
  put_u32 s (List.length v);
  List.iter (put s) v

let put_array (s : sink) (put : sink -> 'a -> unit) (v : 'a array) : unit =
  put_u32 s (Array.length v);
  Array.iter (put s) v

let put_option (s : sink) (put : sink -> 'a -> unit) (v : 'a option) : unit =
  match v with
  | None -> put_u8 s 0
  | Some x ->
    put_u8 s 1;
    put s x

let put_pair (s : sink) (pa : sink -> 'a -> unit) (pb : sink -> 'b -> unit) ((a, b) : 'a * 'b) :
    unit =
  pa s a;
  pb s b

(* --- sources --------------------------------------------------------------- *)

type source = { data : string; mutable pos : int }

let source (data : string) : source = { data; pos = 0 }

let remaining (s : source) : int = String.length s.data - s.pos

let ensure (s : source) (n : int) : unit =
  if remaining s < n then fail "truncated input: need %d bytes, have %d" n (remaining s)

let get_u8 (s : source) : int =
  ensure s 1;
  let v = Char.code s.data.[s.pos] in
  s.pos <- s.pos + 1;
  v

let get_u32 (s : source) : int =
  ensure s 4;
  let v = ref 0 in
  for _ = 1 to 4 do
    v := (!v lsl 8) lor Char.code s.data.[s.pos];
    s.pos <- s.pos + 1
  done;
  !v

let get_u62 (s : source) : int =
  ensure s 8;
  let v = ref 0 in
  for _ = 1 to 8 do
    v := (!v lsl 8) lor Char.code s.data.[s.pos];
    s.pos <- s.pos + 1
  done;
  if !v < 0 then fail "u62 overflow";
  !v

let get_int (s : source) : int =
  let sign = get_u8 s in
  let mag = get_u62 s in
  match sign with
  | 0 -> mag
  | 1 -> -mag
  | v -> fail "bad int sign %d" v

let get_f64 (s : source) : float =
  ensure s 8;
  let bits = ref 0L in
  for _ = 1 to 8 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (Char.code s.data.[s.pos]));
    s.pos <- s.pos + 1
  done;
  Int64.float_of_bits !bits

let get_bool (s : source) : bool =
  match get_u8 s with
  | 0 -> false
  | 1 -> true
  | v -> fail "bad bool tag %d" v

let get_bytes (s : source) : string =
  let n = get_u32 s in
  ensure s n;
  let v = String.sub s.data s.pos n in
  s.pos <- s.pos + n;
  v

(* Every element encoding consumes at least one byte, so a sane count
   never exceeds the bytes left. Checking up front keeps a corrupted
   length field (e.g. 0xffffffff) from attempting a gigantic allocation
   before the first element decode could fail. *)
let get_count (s : source) : int =
  let n = get_u32 s in
  if n > remaining s then fail "bad count: %d elements but only %d bytes remain" n (remaining s);
  n

let get_list (s : source) (get : source -> 'a) : 'a list =
  let n = get_count s in
  List.init n (fun _ -> get s)

let get_array (s : source) (get : source -> 'a) : 'a array =
  let n = get_count s in
  Array.init n (fun _ -> get s)

let get_option (s : source) (get : source -> 'a) : 'a option =
  match get_u8 s with
  | 0 -> None
  | 1 -> Some (get s)
  | v -> fail "bad option tag %d" v

let get_pair (s : source) (ga : source -> 'a) (gb : source -> 'b) : 'a * 'b =
  let a = ga s in
  let b = gb s in
  (a, b)

let expect_end (s : source) : unit =
  if remaining s <> 0 then fail "trailing garbage: %d bytes" (remaining s)

(* --- whole-value helpers ------------------------------------------------------ *)

let encode (put : sink -> 'a -> unit) (v : 'a) : string =
  let s = sink () in
  put s v;
  contents s

let decode (get : source -> 'a) (data : string) : 'a =
  let s = source data in
  let v = get s in
  expect_end s;
  v

(** Binary serialization combinators.

    Canonical encoding — big-endian fixed-width words and length-prefixed
    byte strings — so every codec is deterministic and roundtrips
    byte-identically. *)

exception Decode_error of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Decode_error} with a formatted message. *)

(** {1 Sinks (encoding)} *)

type sink

val sink : unit -> sink
val contents : sink -> string

val put_u8 : sink -> int -> unit
val put_u32 : sink -> int -> unit
val put_u62 : sink -> int -> unit
(** Non-negative native int as 8 bytes. *)

val put_int : sink -> int -> unit
(** Signed native int ([min_int] excluded). *)

val put_bool : sink -> bool -> unit

val put_f64 : sink -> float -> unit
(** IEEE-754 double as its 8 raw bits, big-endian — bit-exact roundtrip
    (infinities and NaN payloads included). *)

val put_bytes : sink -> string -> unit
val put_list : sink -> (sink -> 'a -> unit) -> 'a list -> unit
val put_array : sink -> (sink -> 'a -> unit) -> 'a array -> unit
val put_option : sink -> (sink -> 'a -> unit) -> 'a option -> unit
val put_pair : sink -> (sink -> 'a -> unit) -> (sink -> 'b -> unit) -> 'a * 'b -> unit

(** {1 Sources (decoding)}

    All getters raise {!Decode_error} on malformed or truncated input. *)

type source

val source : string -> source
val remaining : source -> int
val ensure : source -> int -> unit

val get_count : source -> int
(** A u32 element count, validated against the bytes remaining (each
    element consumes at least one byte), so corrupted length fields fail
    with {!Decode_error} instead of attempting huge allocations. *)

val get_u8 : source -> int
val get_u32 : source -> int
val get_u62 : source -> int
val get_int : source -> int
val get_bool : source -> bool
val get_f64 : source -> float
val get_bytes : source -> string
val get_list : source -> (source -> 'a) -> 'a list
val get_array : source -> (source -> 'a) -> 'a array
val get_option : source -> (source -> 'a) -> 'a option
val get_pair : source -> (source -> 'a) -> (source -> 'b) -> 'a * 'b

val expect_end : source -> unit
(** @raise Decode_error when bytes remain. *)

(** {1 Whole-value helpers} *)

val encode : (sink -> 'a -> unit) -> 'a -> string
val decode : (source -> 'a) -> string -> 'a
(** [decode get data] also checks the input is fully consumed. *)

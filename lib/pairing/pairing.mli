(** The modified Tate pairing ê : G × G → μ_n ⊆ F_p²^* on the
    supersingular curve y² = x³ + x.

    G is the order-n subgroup of E(F_p) with p = ℓ·n − 1. The pairing is
    ê(P, Q) = f_{n,P}(φ(Q))^((p²−1)/n) with distortion map
    φ(x, y) = (−x, i·y), computed by Miller's algorithm with denominator
    elimination. It is bilinear, symmetric and non-degenerate — the
    bilinear group BGN requires. *)

module Z = Sagma_bigint.Bigint

type group = {
  p : Z.t;          (** field prime, p = ℓ·n − 1 ≡ 3 (mod 4) *)
  n : Z.t;          (** order of the pairing subgroup (odd; composite for BGN) *)
  l : Z.t;          (** cofactor ℓ *)
  curve : Curve.params;
  final_exp : Z.t;  (** (p² − 1)/n *)
}

val make_group : ?rng:Z.rng -> Z.t -> group
(** [make_group n] finds the smallest cofactor ℓ ≡ 0 (mod 4) with
    ℓ·n − 1 prime. Deterministic given [n] when [rng] is omitted, so a
    group can be reconstructed from [n] alone (serialization relies on
    this). @raise Invalid_argument when [n] is even. *)

val random_order_n_point : ?factors:Z.t list -> group -> Z.rng -> Curve.point
(** Uniformly random point of order {e exactly} n. For prime n the
    built-in rejection is complete and [factors] may be omitted; for
    composite n pass the distinct prime factors of n, and candidates of
    proper-divisor order are rejected (BGN keygen passes [q1; q2]).
    @raise Invalid_argument when a factor does not divide n. *)

val pairing : group -> Curve.point -> Curve.point -> Fp2.t
(** ê(P, Q); returns 1 when either argument is the point at infinity. *)

(** Target-group (μ_n ⊆ F_p²) helpers. *)

val gt_mul : group -> Fp2.t -> Fp2.t -> Fp2.t
val gt_sqr : group -> Fp2.t -> Fp2.t
val gt_inv : group -> Fp2.t -> Fp2.t
val gt_pow : group -> Fp2.t -> Z.t -> Fp2.t
val gt_one : Fp2.t
val gt_equal : Fp2.t -> Fp2.t -> bool

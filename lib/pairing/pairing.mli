(** The modified Tate pairing ê : G × G → μ_n ⊆ F_p²^* on the
    supersingular curve y² = x³ + x.

    G is the order-n subgroup of E(F_p) with p = ℓ·n − 1. The pairing is
    ê(P, Q) = f_{n,P}(φ(Q))^((p²−1)/n) with distortion map
    φ(x, y) = (−x, i·y), computed by Miller's algorithm with denominator
    elimination. It is bilinear, symmetric and non-degenerate — the
    bilinear group BGN requires.

    {2 Cost model}

    The production surface is context-oriented:

    - {!precompute} runs the Miller point ladder for a fixed left
      argument once, in Jacobian coordinates (zero field inversions),
      and caches the per-step line coefficients in Montgomery form.
      Cost: one ladder walk, ~|n| steps of a few modular multiplications.
    - {!pairing_prod} evaluates any number of (precomp, point) pairs in
      one interleaved Miller loop — the accumulator squares once per
      step {e regardless of the pair count} — and pays exactly {b one
      final exponentiation per call}. Marginal cost per extra pair:
      ~6 Montgomery multiplications per Miller step, no inversions.
    - {!pairing} is [fun g p q -> pairing_prod g [(precompute g p, q)]]:
      still the right call for one-off pairings, but callers that pair a
      fixed left argument repeatedly (or can share a final
      exponentiation across a sum of products) should use the
      context-oriented surface; see [Bgn.mul_many].

    {!pairing_affine} is the original affine-coordinate loop (one field
    inversion per Miller step). It is retained as the reference
    implementation the property suite compares against and for
    old-vs-new benchmarking; new code should not call it. *)

module Z = Sagma_bigint.Bigint

type group = {
  p : Z.t;          (** field prime, p = ℓ·n − 1 ≡ 3 (mod 4) *)
  n : Z.t;          (** order of the pairing subgroup (odd; composite for BGN) *)
  l : Z.t;          (** cofactor ℓ *)
  curve : Curve.params;
  final_exp : Z.t;  (** (p² − 1)/n *)
  mont : Z.Mont.ctx;  (** Montgomery context for F_p, shared by the fast path *)
}

val make_group : ?rng:Z.rng -> Z.t -> group
(** [make_group n] finds the smallest cofactor ℓ ≡ 0 (mod 4) with
    ℓ·n − 1 prime. Deterministic given [n] when [rng] is omitted, so a
    group can be reconstructed from [n] alone (serialization relies on
    this). @raise Invalid_argument when [n] is even. *)

val random_order_n_point : ?factors:Z.t list -> group -> Z.rng -> Curve.point
(** Uniformly random point of order {e exactly} n. For prime n the
    built-in rejection is complete and [factors] may be omitted; for
    composite n pass the distinct prime factors of n, and candidates of
    proper-divisor order are rejected (BGN keygen passes [q1; q2]).
    @raise Invalid_argument when a factor does not divide n. *)

(** Cached Miller-loop lines for a fixed left argument. Values are
    immutable once built and safe to share across domains; they are
    bound to the group that built them and are not serialized (rebuild
    with {!precompute} after decoding — cheaper than one pairing). *)
module Precomp : sig
  type line

  type t = {
    point : Curve.point;         (** the fixed left argument *)
    lines : line option array;   (** one slot per Miller step; [None] = vertical *)
  }

  val point : t -> Curve.point
end

val precompute : group -> Curve.point -> Precomp.t
(** One Jacobian Miller-ladder walk for the fixed left argument; no
    field inversions. Precomputing [Infinity] yields an empty cache
    whose pairs evaluate to 1. *)

val pairing_prod : group -> (Precomp.t * Curve.point) list -> Fp2.t
(** [pairing_prod g [(pc1, q1); ...]] is Π ê(P_i, Q_i), computed with a
    single interleaved Miller loop and {b one} final exponentiation.
    Pairs with an infinity on either side contribute 1; the empty (or
    all-infinity) product is 1. Bumps [pairing.pairings] once per live
    pair and [pairing.prod_calls] once per non-trivial call. *)

val pairing : group -> Curve.point -> Curve.point -> Fp2.t
(** ê(P, Q); returns 1 when either argument is the point at infinity.
    Equivalent to [pairing_prod g [(precompute g p, q)]] — kept for
    source compatibility and one-off pairings. *)

val pairing_affine : group -> Curve.point -> Curve.point -> Fp2.t
(** Reference implementation on affine coordinates (one field inversion
    per Miller step, ~50× a multiplication). Deprecated for production
    use; retained for property tests and benchmarks. *)

(** Target-group (μ_n ⊆ F_p²) helpers. *)

val gt_mul : group -> Fp2.t -> Fp2.t -> Fp2.t
val gt_sqr : group -> Fp2.t -> Fp2.t
val gt_inv : group -> Fp2.t -> Fp2.t
val gt_pow : group -> Fp2.t -> Z.t -> Fp2.t
val gt_one : Fp2.t
val gt_equal : Fp2.t -> Fp2.t -> bool

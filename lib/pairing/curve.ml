(* The supersingular elliptic curve E : y² = x³ + x over F_p, p ≡ 3 (mod 4).

   For such p the curve is supersingular with #E(F_p) = p + 1; BGN key
   generation picks p = ℓ·n − 1 so the curve group has a subgroup of the
   composite order n = q₁q₂. Affine coordinates; the point at infinity is
   represented explicitly. *)

module Z = Sagma_bigint.Bigint

type point =
  | Infinity
  | Affine of Z.t * Z.t

type params = { p : Z.t }
(* The field prime. Curve coefficients are fixed: a = 1, b = 0. *)

let make_params (p : Z.t) : params =
  if Z.to_int_exn (Z.erem p (Z.of_int 4)) <> 3 then
    invalid_arg "Curve.make_params: need p ≡ 3 (mod 4)";
  { p }

let is_infinity = function Infinity -> true | Affine _ -> false

let equal a b =
  match (a, b) with
  | Infinity, Infinity -> true
  | Affine (x1, y1), Affine (x2, y2) -> Z.equal x1 x2 && Z.equal y1 y2
  | _ -> false

let neg (cp : params) = function
  | Infinity -> Infinity
  | Affine (x, y) -> Affine (x, Z.erem (Z.neg y) cp.p)

let is_on_curve (cp : params) = function
  | Infinity -> true
  | Affine (x, y) ->
    let p = cp.p in
    let lhs = Z.mulm y y p in
    let rhs = Z.erem (Z.add (Z.mul (Z.mulm x x p) x) x) p in
    Z.equal lhs rhs

(* Slope of the tangent at (x, y): (3x² + 1) / 2y. *)
let tangent_slope (cp : params) x y =
  let p = cp.p in
  let num = Z.addm (Z.mul_int (Z.mulm x x p) 3) Z.one p in
  let den = Z.invm_exn (Z.shift_left y 1) p in
  Z.mulm num den p

(* Slope of the chord through distinct x-coordinates. *)
let chord_slope (cp : params) x1 y1 x2 y2 =
  let p = cp.p in
  Z.mulm (Z.sub y2 y1) (Z.invm_exn (Z.sub x2 x1) p) p

let double (cp : params) (pt : point) : point =
  match pt with
  | Infinity -> Infinity
  | Affine (x, y) ->
    if Z.is_zero y then Infinity
    else begin
      let p = cp.p in
      let l = tangent_slope cp x y in
      let x3 = Z.erem (Z.sub (Z.mul l l) (Z.shift_left x 1)) p in
      let y3 = Z.erem (Z.sub (Z.mul l (Z.sub x x3)) y) p in
      Affine (x3, y3)
    end

let add (cp : params) (a : point) (b : point) : point =
  match (a, b) with
  | Infinity, q | q, Infinity -> q
  | Affine (x1, y1), Affine (x2, y2) ->
    if Z.equal x1 x2 then begin
      if Z.equal y1 y2 then double cp a
      else Infinity (* y1 = -y2: vertical line *)
    end else begin
      let p = cp.p in
      let l = chord_slope cp x1 y1 x2 y2 in
      let x3 = Z.erem (Z.sub (Z.sub (Z.mul l l) x1) x2) p in
      let y3 = Z.erem (Z.sub (Z.mul l (Z.sub x1 x3)) y1) p in
      Affine (x3, y3)
    end

let sub (cp : params) a b = add cp a (neg cp b)

(* --- Jacobian-coordinate fast path for scalar multiplication -------------

   Affine operations cost one field inversion each (~50× a multiplication
   with our bignum), so the double-and-add ladder runs in Jacobian
   coordinates (X, Y, Z) ≘ (X/Z², Y/Z³) with a single inversion at the
   end. Curve coefficient a = 1. *)

type jacobian = { jx : Z.t; jy : Z.t; jz : Z.t }  (* jz = 0 encodes O *)

let jac_infinity = { jx = Z.one; jy = Z.one; jz = Z.zero }

let jac_double (cp : params) (q : jacobian) : jacobian =
  let p = cp.p in
  if Z.is_zero q.jz || Z.is_zero q.jy then jac_infinity
  else begin
    let y2 = Z.mulm q.jy q.jy p in
    let s = Z.erem (Z.shift_left (Z.mul q.jx y2) 2) p in
    let z2 = Z.mulm q.jz q.jz p in
    (* M = 3X² + a·Z⁴ with a = 1 *)
    let m = Z.erem (Z.add (Z.mul_int (Z.mul q.jx q.jx) 3) (Z.mul z2 z2)) p in
    let x' = Z.erem (Z.sub (Z.mul m m) (Z.shift_left s 1)) p in
    let y' = Z.erem (Z.sub (Z.mul m (Z.sub s x')) (Z.shift_left (Z.mul y2 y2) 3)) p in
    let z' = Z.erem (Z.shift_left (Z.mul q.jy q.jz) 1) p in
    { jx = x'; jy = y'; jz = z' }
  end

(* Mixed addition: Jacobian + affine. *)
let jac_add_affine (cp : params) (q : jacobian) (x2 : Z.t) (y2 : Z.t) : jacobian =
  let p = cp.p in
  if Z.is_zero q.jz then { jx = x2; jy = y2; jz = Z.one }
  else begin
    let z1z1 = Z.mulm q.jz q.jz p in
    let u2 = Z.mulm x2 z1z1 p in
    let s2 = Z.mulm y2 (Z.mulm q.jz z1z1 p) p in
    let h = Z.subm u2 q.jx p in
    let r = Z.subm s2 q.jy p in
    if Z.is_zero h then begin
      if Z.is_zero r then jac_double cp q else jac_infinity
    end
    else begin
      let h2 = Z.mulm h h p in
      let h3 = Z.mulm h2 h p in
      let x1h2 = Z.mulm q.jx h2 p in
      let x3 = Z.erem (Z.sub (Z.sub (Z.mul r r) h3) (Z.shift_left x1h2 1)) p in
      let y3 = Z.erem (Z.sub (Z.mul r (Z.sub x1h2 x3)) (Z.mul q.jy h3)) p in
      let z3 = Z.mulm q.jz h p in
      { jx = x3; jy = y3; jz = z3 }
    end
  end

let jac_to_affine (cp : params) (q : jacobian) : point =
  if Z.is_zero q.jz then Infinity
  else begin
    let p = cp.p in
    let zi = Z.invm_exn q.jz p in
    let zi2 = Z.mulm zi zi p in
    Affine (Z.mulm q.jx zi2 p, Z.mulm q.jy (Z.mulm zi2 zi p) p)
  end

(* Scalar multiplication, double-and-add MSB-first in Jacobian form. *)
let mul (cp : params) (k : Z.t) (pt : point) : point =
  if Z.sign k < 0 then invalid_arg "Curve.mul: negative scalar";
  match pt with
  | Infinity -> Infinity
  | Affine (x, y) ->
    let nbits = Z.num_bits k in
    let acc = ref jac_infinity in
    for i = nbits - 1 downto 0 do
      acc := jac_double cp !acc;
      if Z.bit k i then acc := jac_add_affine cp !acc x y
    done;
    jac_to_affine cp !acc

let mul_int (cp : params) (k : int) (pt : point) : point = mul cp (Z.of_int k) pt

(* Batch scalar multiplication: run every ladder in Jacobian form and
   normalize all results with one batched inversion (Montgomery's trick
   in Bigint) instead of one invm per point. *)
let mul_batch (cp : params) (pairs : (Z.t * point) array) : point array =
  let p = cp.p in
  let jacs =
    Array.map
      (fun (k, pt) ->
        if Z.sign k < 0 then invalid_arg "Curve.mul_batch: negative scalar";
        match pt with
        | Infinity -> jac_infinity
        | Affine (x, y) ->
          let nbits = Z.num_bits k in
          let acc = ref jac_infinity in
          for i = nbits - 1 downto 0 do
            acc := jac_double cp !acc;
            if Z.bit k i then acc := jac_add_affine cp !acc x y
          done;
          !acc)
      pairs
  in
  let live = ref [] in
  Array.iteri (fun i q -> if not (Z.is_zero q.jz) then live := i :: !live) jacs;
  let idxs = Array.of_list (List.rev !live) in
  let zinvs = Z.invm_batch (Array.map (fun i -> jacs.(i).jz) idxs) p in
  let out = Array.make (Array.length jacs) Infinity in
  Array.iteri
    (fun j i ->
      let q = jacs.(i) in
      let zi = zinvs.(j) in
      let zi2 = Z.mulm zi zi p in
      out.(i) <- Affine (Z.mulm q.jx zi2 p, Z.mulm q.jy (Z.mulm zi2 zi p) p))
    idxs;
  out

(* Sample a uniformly random curve point (never Infinity). *)
let random_point (cp : params) (rng : Z.rng) : point =
  let p = cp.p in
  let rec go () =
    let x = Z.random_below rng p in
    let rhs = Z.erem (Z.add (Z.mul (Z.mulm x x p) x) x) p in
    match Z.sqrtm_p3 rhs p with
    | None -> go ()
    | Some y ->
      (* Flip the sign of y on a coin to cover both roots. *)
      let flip = Char.code (rng 1).[0] land 1 = 1 in
      let y = if flip && not (Z.is_zero y) then Z.sub p y else y in
      Affine (x, y)
  in
  go ()

let serialize = function
  | Infinity -> "inf"
  | Affine (x, y) -> Z.to_bytes_be x ^ "|" ^ Z.to_bytes_be y

let to_string = function
  | Infinity -> "O"
  | Affine (x, y) -> Printf.sprintf "(%s, %s)" (Z.to_string x) (Z.to_string y)

(* The quadratic extension F_p² = F_p[i]/(i² + 1), for p ≡ 3 (mod 4).

   Elements are [a + b·i] with [a], [b] reduced mod p. The pairing target
   group G_T lives here. *)

module Z = Sagma_bigint.Bigint

type t = { re : Z.t; im : Z.t }

let make ~p re im = { re = Z.erem re p; im = Z.erem im p }

let zero = { re = Z.zero; im = Z.zero }
let one = { re = Z.one; im = Z.zero }

let of_fp (a : Z.t) : t = { re = a; im = Z.zero }

let equal a b = Z.equal a.re b.re && Z.equal a.im b.im
let is_zero a = Z.is_zero a.re && Z.is_zero a.im
let is_one a = Z.equal a.re Z.one && Z.is_zero a.im

let add ~p a b = { re = Z.addm a.re b.re p; im = Z.addm a.im b.im p }
let sub ~p a b = { re = Z.subm a.re b.re p; im = Z.subm a.im b.im p }
let neg ~p a = { re = Z.erem (Z.neg a.re) p; im = Z.erem (Z.neg a.im) p }

(* (a + bi)(c + di) = (ac − bd) + (ad + bc)i *)
let mul ~p a b =
  let ac = Z.mul a.re b.re and bd = Z.mul a.im b.im in
  let ad = Z.mul a.re b.im and bc = Z.mul a.im b.re in
  { re = Z.erem (Z.sub ac bd) p; im = Z.erem (Z.add ad bc) p }

let sqr ~p a =
  (* (a + bi)² = (a−b)(a+b) + 2ab·i *)
  let re = Z.mul (Z.sub a.re a.im) (Z.add a.re a.im) in
  let im = Z.shift_left (Z.mul a.re a.im) 1 in
  { re = Z.erem re p; im = Z.erem im p }

(* Norm N(a + bi) = a² + b² ∈ F_p. *)
let norm ~p a = Z.erem (Z.add (Z.mul a.re a.re) (Z.mul a.im a.im)) p

(* Inverse via the norm: (a + bi)⁻¹ = (a − bi) / (a² + b²). *)
let inv ~p a =
  if is_zero a then invalid_arg "Fp2.inv: zero";
  let n_inv = Z.invm_exn (norm ~p a) p in
  { re = Z.mulm a.re n_inv p; im = Z.erem (Z.neg (Z.mulm a.im n_inv p)) p }

let div ~p a b = mul ~p a (inv ~p b)

let conj ~p a = { re = a.re; im = Z.erem (Z.neg a.im) p }

let pow ~p (base : t) (e : Z.t) : t =
  if Z.sign e < 0 then invalid_arg "Fp2.pow: negative exponent";
  let nbits = Z.num_bits e in
  let acc = ref one and b = ref base in
  for i = 0 to nbits - 1 do
    if Z.bit e i then acc := mul ~p !acc !b;
    if i < nbits - 1 then b := sqr ~p !b
  done;
  !acc

let to_string a = Printf.sprintf "%s + %s*i" (Z.to_string a.re) (Z.to_string a.im)

(* Compact serialization, usable as a hashtable key in BSGS tables. *)
let serialize a = Z.to_bytes_be a.re ^ "|" ^ Z.to_bytes_be a.im

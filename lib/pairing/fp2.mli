(** The quadratic extension F_p² = F_p[i]/(i² + 1), for primes
    p ≡ 3 (mod 4). The pairing target group G_T lives here. *)

module Z = Sagma_bigint.Bigint

type t = { re : Z.t; im : Z.t }
(** [re + im·i], both reduced mod p. *)

val make : p:Z.t -> Z.t -> Z.t -> t
(** [make ~p re im] reduces both components. *)

val zero : t
val one : t

val of_fp : Z.t -> t
(** Embed a base-field element. *)

val equal : t -> t -> bool
val is_zero : t -> bool
val is_one : t -> bool

val add : p:Z.t -> t -> t -> t
val sub : p:Z.t -> t -> t -> t
val neg : p:Z.t -> t -> t
val mul : p:Z.t -> t -> t -> t
val sqr : p:Z.t -> t -> t

val norm : p:Z.t -> t -> Z.t
(** N(a + bi) = a² + b² ∈ F_p. *)

val inv : p:Z.t -> t -> t
(** @raise Invalid_argument on zero. *)

val div : p:Z.t -> t -> t -> t

val conj : p:Z.t -> t -> t
(** Conjugation a + bi ↦ a − bi; this is inversion on the norm-1
    subgroup (in particular on μ_n, the pairing image). *)

val pow : p:Z.t -> t -> Z.t -> t
(** Square-and-multiply exponentiation, non-negative exponents. *)

val to_string : t -> string

val serialize : t -> string
(** Injective encoding usable as a hashtable key (BSGS tables). *)

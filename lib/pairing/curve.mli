(** The supersingular elliptic curve E : y² = x³ + x over F_p,
    p ≡ 3 (mod 4), with #E(F_p) = p + 1.

    BGN key generation picks p = ℓ·n − 1 so the group has a subgroup of
    composite order n = q₁q₂. Affine representation with an explicit
    point at infinity; scalar multiplication runs in Jacobian coordinates
    internally (one field inversion total instead of one per step). *)

module Z = Sagma_bigint.Bigint

type point =
  | Infinity
  | Affine of Z.t * Z.t

type params = { p : Z.t }
(** The field prime; curve coefficients are fixed (a = 1, b = 0). *)

val make_params : Z.t -> params
(** @raise Invalid_argument unless p ≡ 3 (mod 4). *)

val is_infinity : point -> bool
val equal : point -> point -> bool
val is_on_curve : params -> point -> bool

val neg : params -> point -> point
val add : params -> point -> point -> point
val double : params -> point -> point
val sub : params -> point -> point -> point

val mul : params -> Z.t -> point -> point
(** Scalar multiplication, non-negative scalars. *)

val mul_int : params -> int -> point -> point

val mul_batch : params -> (Z.t * point) array -> point array
(** [mul_batch cp [|(k1, p1); ...|]] computes every [ki·pi] with a single
    field inversion shared across the batch ({!Z.invm_batch}) instead of
    one per point — the cheap way to materialize a table of scalar
    multiples (e.g. per-block constants in the aggregation loop). *)

val tangent_slope : params -> Z.t -> Z.t -> Z.t
(** Slope of the tangent at an affine point (used by Miller's algorithm,
    which shares one slope between line evaluation and point update). *)

val chord_slope : params -> Z.t -> Z.t -> Z.t -> Z.t -> Z.t
(** Slope of the chord through two points with distinct x. *)

val random_point : params -> Z.rng -> point
(** Uniformly random affine point (never [Infinity]). *)

val serialize : point -> string
(** Injective encoding usable as a hashtable key. *)

val to_string : point -> string

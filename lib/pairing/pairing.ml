(* The modified Tate pairing ê : G × G → μ_n ⊆ F_p²^* on the supersingular
   curve y² = x³ + x.

   [G] is the order-[n] subgroup of E(F_p) where #E(F_p) = p + 1 = ℓ·n.
   The pairing is ê(P, Q) = f_{n,P}(φ(Q))^((p²−1)/n) where φ(x, y) =
   (−x, i·y) is the distortion map into E(F_p²) \ E(F_p), computed with
   Miller's algorithm.

   Denominator elimination: vertical-line values at φ(Q) = (−x_Q, i·y_Q)
   lie in F_p^* (the x-coordinate of φ(Q) is in the base field), and every
   F_p^* value is annihilated by the final exponentiation, because
   (p²−1)/n = (p−1)·(p+1)/n and a^(p−1) = 1. So the Miller loop only
   accumulates the (F_p²-valued) tangent/chord line evaluations.

   The production path is inversion-free: [precompute] walks the Miller
   loop once per left argument in Jacobian coordinates, storing the line
   coefficients (projectively scaled — the F_p^* scale factors are also
   annihilated by the final exponentiation) in Montgomery form, and
   [pairing_prod] evaluates any number of such precomputed lines against
   their right arguments in one interleaved loop with a single shared
   final exponentiation. The original affine loop survives as
   [pairing_affine], the reference the property tests compare against. *)

module Z = Sagma_bigint.Bigint
module M = Z.Mont

type group = {
  p : Z.t;          (* field prime, p = l*n - 1, p ≡ 3 (mod 4) *)
  n : Z.t;          (* order of the pairing subgroup *)
  l : Z.t;          (* cofactor *)
  curve : Curve.params;
  final_exp : Z.t;  (* (p² − 1) / n *)
  mont : M.ctx;     (* Montgomery context for F_p (p is odd by construction) *)
}

(* Construct the group for a given subgroup order [n]: find the smallest
   cofactor ℓ ≡ 0 (mod 4) such that p = ℓ·n − 1 is prime. ℓ ≡ 0 (mod 4)
   forces p ≡ 3 (mod 4) since n is odd. *)
let make_group ?(rng : Z.rng option) (n : Z.t) : group =
  if Z.is_even n then invalid_arg "Pairing.make_group: n must be odd";
  let rng =
    match rng with
    | Some r -> r
    | None ->
      (* Primality testing needs random bases; derive them from n itself so
         group construction is deterministic. *)
      let d = ref 0 in
      fun len ->
        incr d;
        let h = ref (Z.erem n (Z.of_int 1000000007)) in
        String.init len (fun i ->
            h := Z.erem (Z.add (Z.mul_int !h 31) (Z.of_int (i + !d))) (Z.of_int 16777213);
            Char.chr (Z.to_int_exn (Z.erem !h (Z.of_int 256))))
  in
  let rec find l =
    let p = Z.pred (Z.mul (Z.of_int l) n) in
    if Z.is_probable_prime rng p then (Z.of_int l, p) else find (l + 4)
  in
  let l, p = find 4 in
  let final_exp = Z.div (Z.pred (Z.mul p p)) n in
  { p; n; l; curve = Curve.make_params p; final_exp; mont = M.make p }

(* A uniformly random point of order exactly n. Cofactor clearing leaves
   a point whose order divides n; the is_infinity rejection rules out
   order 1, which for prime n already forces order exactly n. For
   composite n the proper divisors can only be excluded knowing the
   factorization, so callers pass the distinct prime factors and each
   candidate is checked to survive multiplication by every n/q. *)
let random_order_n_point ?(factors : Z.t list = []) (g : group) (rng : Z.rng) : Curve.point =
  List.iter
    (fun q ->
      if not (Z.is_zero (Z.erem g.n q)) then
        invalid_arg "Pairing.random_order_n_point: factor does not divide n")
    factors;
  let full_order cand =
    List.for_all
      (fun q -> not (Curve.is_infinity (Curve.mul g.curve (Z.div g.n q) cand)))
      factors
  in
  let rec go () =
    let r = Curve.random_point g.curve rng in
    let cand = Curve.mul g.curve g.l r in
    if Curve.is_infinity cand || not (full_order cand) then go () else cand
  in
  go ()

let m_pairings = Sagma_obs.Metrics.counter "pairing.pairings"
let m_miller_steps = Sagma_obs.Metrics.counter "pairing.miller_steps"
let m_prod_calls = Sagma_obs.Metrics.counter "pairing.prod_calls"

(* --- reference affine path --------------------------------------------------

   One fused Miller step: the line through [t] and [u] (tangent when they
   coincide) evaluated at φ(Q), together with t + u — sharing the single
   slope inversion between the line value and the point update. Vertical
   lines return no line factor (eliminated by the final exponentiation). *)
let miller_step (g : group) (t : Curve.point) (u : Curve.point) ~(xq : Z.t) ~(yq : Z.t) :
    Fp2.t option * Curve.point =
  let p = g.p in
  match (t, u) with
  | Curve.Infinity, v | v, Curve.Infinity -> (None, v)
  | Curve.Affine (x1, y1), Curve.Affine (x2, y2) ->
    let doubling = Z.equal x1 x2 && Z.equal y1 y2 in
    if Z.equal x1 x2 && not doubling then (None, Curve.Infinity)
    else if doubling && Z.is_zero y1 then (None, Curve.Infinity)
    else begin
      let l =
        if doubling then Curve.tangent_slope g.curve x1 y1
        else Curve.chord_slope g.curve x1 y1 x2 y2
      in
      let x3 = Z.erem (Z.sub (Z.sub (Z.mul l l) x1) x2) p in
      let y3 = Z.erem (Z.sub (Z.mul l (Z.sub x1 x3)) y1) p in
      (* l(φQ) with x_φQ = −xq ∈ F_p and y_φQ = yq·i. *)
      let re = Z.erem (Z.sub (Z.neg y1) (Z.mul l (Z.sub (Z.neg xq) x1))) p in
      (Some { Fp2.re; im = yq }, Curve.Affine (x3, y3))
    end

(* Miller's algorithm computing f_{n,P}(φ(Q)) in affine coordinates (one
   field inversion per step), followed by the final exponentiation. *)
let pairing_affine (g : group) (pp : Curve.point) (qq : Curve.point) : Fp2.t =
  match (pp, qq) with
  | Curve.Infinity, _ | _, Curve.Infinity -> Fp2.one
  | Curve.Affine _, Curve.Affine (xq, yq) ->
    Sagma_obs.Metrics.incr m_pairings;
    let p = g.p in
    let f = ref Fp2.one in
    let t = ref pp in
    let steps = ref 0 in
    let nbits = Z.num_bits g.n in
    for i = nbits - 2 downto 0 do
      f := Fp2.sqr ~p !f;
      let lv, t2 = miller_step g !t !t ~xq ~yq in
      (match lv with Some lv -> f := Fp2.mul ~p !f lv | None -> ());
      t := t2;
      incr steps;
      if Z.bit g.n i then begin
        let lv, t3 = miller_step g !t pp ~xq ~yq in
        (match lv with Some lv -> f := Fp2.mul ~p !f lv | None -> ());
        t := t3;
        incr steps
      end
    done;
    Sagma_obs.Metrics.add m_miller_steps !steps;
    Fp2.pow ~p !f g.final_exp

(* --- fixed-argument precomputation ------------------------------------------

   The Miller loop's point ladder depends only on the left argument P and
   the (fixed) loop schedule of n, never on Q. [precompute] runs that
   ladder once, in Jacobian coordinates (zero inversions), emitting for
   every step the coefficients (c0, cx, cy) of the projectively scaled
   line value  c0 + cx·x_Q + cy·y_Q·i  at φ(Q) = (−x_Q, i·y_Q). The scale
   factors live in F_p^* and are annihilated by the final exponentiation,
   so evaluating these lines is exactly equivalent to the affine loop.
   Coefficients are stored in Montgomery form: [pairing_prod] never
   leaves Montgomery residues until its final conversion. *)

module Precomp = struct
  type line = { c0 : M.el; cx : M.el; cy : M.el }

  type t = {
    point : Curve.point;         (* the fixed left argument *)
    lines : line option array;   (* one slot per Miller step; None = vertical *)
  }

  let point (t : t) = t.point
end

let precompute (g : group) (pp : Curve.point) : Precomp.t =
  match pp with
  | Curve.Infinity -> { Precomp.point = pp; lines = [||] }
  | Curve.Affine (xp, yp) ->
    let p = g.p in
    let mc = g.mont in
    let lines = ref [] in
    let emit = function
      | None -> lines := None :: !lines
      | Some (c0, cx, cy) ->
        lines :=
          Some { Precomp.c0 = M.of_z mc c0; cx = M.of_z mc cx; cy = M.of_z mc cy } :: !lines
    in
    (* T = (tx, ty, tz) Jacobian, (X/Z², Y/Z³); tz = 0 encodes O. *)
    let tx = ref xp and ty = ref yp and tz = ref Z.one in
    let set_infinity () =
      tx := Z.one;
      ty := Z.one;
      tz := Z.zero
    in
    (* Doubling step. Slope λ = M/Z3; the tangent at T evaluated at φ(Q),
       scaled by Z3·Z1Z1 ∈ F_p^*, is
         (M·X1 − 2A) + M·Z1Z1·x_Q + Z3·Z1Z1·y_Q·i.  *)
    let dbl () =
      if Z.is_zero !tz || Z.is_zero !ty then begin
        emit None;
        set_infinity ()
      end
      else begin
        let x1 = !tx and y1 = !ty and z1 = !tz in
        let a = Z.mulm y1 y1 p in
        let s = Z.erem (Z.shift_left (Z.mul x1 a) 2) p in
        let z1z1 = Z.mulm z1 z1 p in
        let m = Z.erem (Z.add (Z.mul_int (Z.mul x1 x1) 3) (Z.mul z1z1 z1z1)) p in
        let x3 = Z.erem (Z.sub (Z.mul m m) (Z.shift_left s 1)) p in
        let y3 = Z.erem (Z.sub (Z.mul m (Z.sub s x3)) (Z.shift_left (Z.mul a a) 3)) p in
        let z3 = Z.erem (Z.shift_left (Z.mul y1 z1) 1) p in
        let c0 = Z.erem (Z.sub (Z.mul m x1) (Z.shift_left a 1)) p in
        let cx = Z.mulm m z1z1 p in
        let cy = Z.mulm z3 z1z1 p in
        emit (Some (c0, cx, cy));
        tx := x3;
        ty := y3;
        tz := z3
      end
    in
    (* Mixed addition step T := T + P. Slope λ = R/Z3; the chord,
       anchored at the affine P and scaled by Z3 ∈ F_p^*, is
         (R·x_P − Z3·y_P) + R·x_Q + Z3·y_Q·i.  *)
    let add_p () =
      if Z.is_zero !tz then begin
        (* T = O: no line, the sum is just P (mirrors the affine step). *)
        emit None;
        tx := xp;
        ty := yp;
        tz := Z.one
      end
      else begin
        let x1 = !tx and y1 = !ty and z1 = !tz in
        let z1z1 = Z.mulm z1 z1 p in
        let u2 = Z.mulm xp z1z1 p in
        let s2 = Z.mulm yp (Z.mulm z1 z1z1 p) p in
        let h = Z.subm u2 x1 p in
        let r = Z.subm s2 y1 p in
        if Z.is_zero h then begin
          if Z.is_zero r then
            (* T = P mid-loop (small-order points): the chord degenerates
               to the tangent, exactly the affine fallback. *)
            dbl ()
          else begin
            (* Vertical line: F_p-valued at φ(Q), eliminated. *)
            emit None;
            set_infinity ()
          end
        end
        else begin
          let h2 = Z.mulm h h p in
          let h3 = Z.mulm h2 h p in
          let x1h2 = Z.mulm x1 h2 p in
          let x3 = Z.erem (Z.sub (Z.sub (Z.mul r r) h3) (Z.shift_left x1h2 1)) p in
          let y3 = Z.erem (Z.sub (Z.mul r (Z.sub x1h2 x3)) (Z.mul y1 h3)) p in
          let z3 = Z.mulm z1 h p in
          let c0 = Z.erem (Z.sub (Z.mul r xp) (Z.mul z3 yp)) p in
          emit (Some (c0, r, z3));
          tx := x3;
          ty := y3;
          tz := z3
        end
      end
    in
    let nbits = Z.num_bits g.n in
    for i = nbits - 2 downto 0 do
      dbl ();
      if Z.bit g.n i then add_p ()
    done;
    { Precomp.point = pp; lines = Array.of_list (List.rev !lines) }

(* --- multi-pairing ----------------------------------------------------------

   F_p² arithmetic on Montgomery residues (i² = −1 since p ≡ 3 (mod 4)). *)

type mfp2 = { mre : M.el; mim : M.el }

let mfp2_mul mc a b =
  let rr = M.mul mc a.mre b.mre and ii = M.mul mc a.mim b.mim in
  let ri = M.mul mc a.mre b.mim and ir = M.mul mc a.mim b.mre in
  { mre = M.sub mc rr ii; mim = M.add mc ri ir }

let mfp2_sqr mc a =
  (* (a+bi)² = (a−b)(a+b) + 2ab·i — two multiplications. *)
  let s = M.add mc a.mre a.mim and d = M.sub mc a.mre a.mim in
  { mre = M.mul mc s d; mim = M.mul mc (M.add mc a.mre a.mre) a.mim }

let mfp2_one mc = { mre = M.one mc; mim = M.zero mc }

let mfp2_pow mc a e =
  let nbits = Z.num_bits e in
  let acc = ref (mfp2_one mc) in
  for i = nbits - 1 downto 0 do
    acc := mfp2_sqr mc !acc;
    if Z.bit e i then acc := mfp2_mul mc !acc a
  done;
  !acc

(* Product of pairings Π ê(P_i, Q_i) with a single interleaved Miller
   loop and one shared final exponentiation. All pairs share the loop
   schedule (the bits of n), so the accumulator squares once per step
   regardless of the number of pairs:  (Π f_i)² · Π l_i = Π (f_i² · l_i).
   Pairs with an infinity on either side contribute the factor 1. *)
let pairing_prod (g : group) (pairs : (Precomp.t * Curve.point) list) : Fp2.t =
  let mc = g.mont in
  let live =
    List.filter_map
      (fun ((pc : Precomp.t), q) ->
        match (pc.Precomp.point, q) with
        | Curve.Infinity, _ | _, Curve.Infinity -> None
        | Curve.Affine _, Curve.Affine (xq, yq) ->
          Some (pc.Precomp.lines, M.of_z mc xq, M.of_z mc yq))
      pairs
  in
  match live with
  | [] -> Fp2.one
  | _ :: _ ->
    let nlive = List.length live in
    Sagma_obs.Metrics.incr m_prod_calls;
    Sagma_obs.Metrics.add m_pairings nlive;
    let f = ref (mfp2_one mc) in
    let idx = ref 0 in
    let steps = ref 0 in
    let step () =
      let i = !idx in
      List.iter
        (fun (lines, mxq, myq) ->
          match lines.(i) with
          | None -> ()
          | Some { Precomp.c0; cx; cy } ->
            let re = M.add mc c0 (M.mul mc cx mxq) in
            let im = M.mul mc cy myq in
            f := mfp2_mul mc !f { mre = re; mim = im })
        live;
      incr idx;
      incr steps
    in
    let nbits = Z.num_bits g.n in
    for i = nbits - 2 downto 0 do
      f := mfp2_sqr mc !f;
      step ();
      if Z.bit g.n i then step ()
    done;
    Sagma_obs.Metrics.add m_miller_steps (!steps * nlive);
    let r = mfp2_pow mc !f g.final_exp in
    { Fp2.re = M.to_z mc r.mre; im = M.to_z mc r.mim }

(* The scalar entry point, kept source-compatible: one precomputation,
   one pair, one final exponentiation. Callers that pair against the
   same left argument repeatedly should hold a [Precomp.t] instead. *)
let pairing (g : group) (pp : Curve.point) (qq : Curve.point) : Fp2.t =
  pairing_prod g [ (precompute g pp, qq) ]

(* G_T helpers (the pairing target group μ_n ⊂ F_p²). *)
let gt_mul (g : group) a b = Fp2.mul ~p:g.p a b
let gt_sqr (g : group) a = Fp2.sqr ~p:g.p a
let gt_inv (g : group) a = Fp2.inv ~p:g.p a
let gt_pow (g : group) a e = Fp2.pow ~p:g.p a (Z.erem e g.n)
let gt_one = Fp2.one
let gt_equal = Fp2.equal

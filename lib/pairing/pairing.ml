(* The modified Tate pairing ê : G × G → μ_n ⊆ F_p²^* on the supersingular
   curve y² = x³ + x.

   [G] is the order-[n] subgroup of E(F_p) where #E(F_p) = p + 1 = ℓ·n.
   The pairing is ê(P, Q) = f_{n,P}(φ(Q))^((p²−1)/n) where φ(x, y) =
   (−x, i·y) is the distortion map into E(F_p²) \ E(F_p), computed with
   Miller's algorithm.

   Denominator elimination: vertical-line values at φ(Q) = (−x_Q, i·y_Q)
   lie in F_p^* (the x-coordinate of φ(Q) is in the base field), and every
   F_p^* value is annihilated by the final exponentiation, because
   (p²−1)/n = (p−1)·(p+1)/n and a^(p−1) = 1. So the Miller loop only
   accumulates the (F_p²-valued) tangent/chord line evaluations. *)

module Z = Sagma_bigint.Bigint

type group = {
  p : Z.t;          (* field prime, p = l*n - 1, p ≡ 3 (mod 4) *)
  n : Z.t;          (* order of the pairing subgroup *)
  l : Z.t;          (* cofactor *)
  curve : Curve.params;
  final_exp : Z.t;  (* (p² − 1) / n *)
}

(* Construct the group for a given subgroup order [n]: find the smallest
   cofactor ℓ ≡ 0 (mod 4) such that p = ℓ·n − 1 is prime. ℓ ≡ 0 (mod 4)
   forces p ≡ 3 (mod 4) since n is odd. *)
let make_group ?(rng : Z.rng option) (n : Z.t) : group =
  if Z.is_even n then invalid_arg "Pairing.make_group: n must be odd";
  let rng =
    match rng with
    | Some r -> r
    | None ->
      (* Primality testing needs random bases; derive them from n itself so
         group construction is deterministic. *)
      let d = ref 0 in
      fun len ->
        incr d;
        let h = ref (Z.erem n (Z.of_int 1000000007)) in
        String.init len (fun i ->
            h := Z.erem (Z.add (Z.mul_int !h 31) (Z.of_int (i + !d))) (Z.of_int 16777213);
            Char.chr (Z.to_int_exn (Z.erem !h (Z.of_int 256))))
  in
  let rec find l =
    let p = Z.pred (Z.mul (Z.of_int l) n) in
    if Z.is_probable_prime rng p then (Z.of_int l, p) else find (l + 4)
  in
  let l, p = find 4 in
  let final_exp = Z.div (Z.pred (Z.mul p p)) n in
  { p; n; l; curve = Curve.make_params p; final_exp }

(* A uniformly random point of order exactly n. Cofactor clearing leaves
   a point whose order divides n; the is_infinity rejection rules out
   order 1, which for prime n already forces order exactly n. For
   composite n the proper divisors can only be excluded knowing the
   factorization, so callers pass the distinct prime factors and each
   candidate is checked to survive multiplication by every n/q. *)
let random_order_n_point ?(factors : Z.t list = []) (g : group) (rng : Z.rng) : Curve.point =
  List.iter
    (fun q ->
      if not (Z.is_zero (Z.erem g.n q)) then
        invalid_arg "Pairing.random_order_n_point: factor does not divide n")
    factors;
  let full_order cand =
    List.for_all
      (fun q -> not (Curve.is_infinity (Curve.mul g.curve (Z.div g.n q) cand)))
      factors
  in
  let rec go () =
    let r = Curve.random_point g.curve rng in
    let cand = Curve.mul g.curve g.l r in
    if Curve.is_infinity cand || not (full_order cand) then go () else cand
  in
  go ()

(* One fused Miller step: the line through [t] and [u] (tangent when they
   coincide) evaluated at φ(Q), together with t + u — sharing the single
   slope inversion between the line value and the point update. Vertical
   lines return no line factor (eliminated by the final exponentiation). *)
let miller_step (g : group) (t : Curve.point) (u : Curve.point) ~(xq : Z.t) ~(yq : Z.t) :
    Fp2.t option * Curve.point =
  let p = g.p in
  match (t, u) with
  | Curve.Infinity, v | v, Curve.Infinity -> (None, v)
  | Curve.Affine (x1, y1), Curve.Affine (x2, y2) ->
    let doubling = Z.equal x1 x2 && Z.equal y1 y2 in
    if Z.equal x1 x2 && not doubling then (None, Curve.Infinity)
    else if doubling && Z.is_zero y1 then (None, Curve.Infinity)
    else begin
      let l =
        if doubling then Curve.tangent_slope g.curve x1 y1
        else Curve.chord_slope g.curve x1 y1 x2 y2
      in
      let x3 = Z.erem (Z.sub (Z.sub (Z.mul l l) x1) x2) p in
      let y3 = Z.erem (Z.sub (Z.mul l (Z.sub x1 x3)) y1) p in
      (* l(φQ) with x_φQ = −xq ∈ F_p and y_φQ = yq·i. *)
      let re = Z.erem (Z.sub (Z.neg y1) (Z.mul l (Z.sub (Z.neg xq) x1))) p in
      (Some { Fp2.re; im = yq }, Curve.Affine (x3, y3))
    end

(* Miller's algorithm computing f_{n,P}(φ(Q)), followed by the final
   exponentiation. *)
let m_pairings = Sagma_obs.Metrics.counter "pairing.pairings"
let m_miller_steps = Sagma_obs.Metrics.counter "pairing.miller_steps"

let pairing (g : group) (pp : Curve.point) (qq : Curve.point) : Fp2.t =
  match (pp, qq) with
  | Curve.Infinity, _ | _, Curve.Infinity -> Fp2.one
  | Curve.Affine _, Curve.Affine (xq, yq) ->
    Sagma_obs.Metrics.incr m_pairings;
    let p = g.p in
    let f = ref Fp2.one in
    let t = ref pp in
    let steps = ref 0 in
    let nbits = Z.num_bits g.n in
    for i = nbits - 2 downto 0 do
      f := Fp2.sqr ~p !f;
      let lv, t2 = miller_step g !t !t ~xq ~yq in
      (match lv with Some lv -> f := Fp2.mul ~p !f lv | None -> ());
      t := t2;
      incr steps;
      if Z.bit g.n i then begin
        let lv, t3 = miller_step g !t pp ~xq ~yq in
        (match lv with Some lv -> f := Fp2.mul ~p !f lv | None -> ());
        t := t3;
        incr steps
      end
    done;
    Sagma_obs.Metrics.add m_miller_steps !steps;
    Fp2.pow ~p !f g.final_exp

(* G_T helpers (the pairing target group μ_n ⊂ F_p²). *)
let gt_mul (g : group) a b = Fp2.mul ~p:g.p a b
let gt_sqr (g : group) a = Fp2.sqr ~p:g.p a
let gt_inv (g : group) a = Fp2.inv ~p:g.p a
let gt_pow (g : group) a e = Fp2.pow ~p:g.p a (Z.erem e g.n)
let gt_one = Fp2.one
let gt_equal = Fp2.equal

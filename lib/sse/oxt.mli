(** OXT — Oblivious Cross-Tags (Cash et al., CRYPTO'13): searchable
    symmetric encryption for conjunctive queries w₁ ∧ … ∧ wₙ; the SAGMA
    paper's reference [6] for determining joint bucket membership without
    leaking individual memberships (§3.2, §3.4).

    Two-round search: the client sends the s-term's stag (choose the
    least-frequent term), learns its match count, then sends per-counter
    x-tokens for the remaining terms; the server filters by cross-tag
    membership. Leakage: the s-term's result count and which of its
    entries satisfy the conjunction — never the other keywords' posting
    lists. *)

module Z = Sagma_bigint.Bigint
module Curve = Sagma_pairing.Curve
module Pairing = Sagma_pairing.Pairing
module Prf = Sagma_crypto.Prf
module Drbg = Sagma_crypto.Drbg

type params = {
  group : Pairing.group;  (** prime-order curve subgroup *)
  base : Curve.point;
}

val default_order : Z.t
val make_params : ?order:Z.t -> unit -> params

type key = { k_t : Prf.key; k_x : Prf.key; k_i : Prf.key; k_z : Prf.key }
(** Exposed for serialization; treat as an opaque secret. *)

val gen : Drbg.t -> key

type tset_entry = { e : string; y : Z.t }

type index = {
  tset : (string, tset_entry) Hashtbl.t;
  xset : (string, unit) Hashtbl.t;
}

val build : params -> key -> (string * int list) list -> index
(** Encrypt a keyword → ids association into TSet + XSet. *)

val add : params -> key -> index -> string -> counter:int -> int -> index
(** Append one posting; [counter] is the keyword's current posting count.
    Non-destructive. *)

type stag = { s_keyword_key : Prf.key; s_mask_key : Prf.key }
(** Exposed for serialization. *)

val stag : key -> string -> stag
(** Search token for the s-term. *)

val stag_count : index -> stag -> int
(** Round 1 (server): the s-term's entry count. *)

val xtokens :
  params -> key -> s_term:string -> x_terms:string list -> count:int ->
  Curve.point array array
(** Round 2 (client): x-tokens, one row per s-term counter. *)

val search : params -> index -> stag -> Curve.point array array -> int list
(** Round 2 (server): ids of s-term entries whose cross-tags match every
    x-term. *)

val conjunction : params -> key -> index -> string list -> int list
(** One-shot both-round helper; pass the least-frequent keyword first. *)

val tset_size : index -> int
val xset_size : index -> int

(** Searchable symmetric encryption: the Π_bas scheme of Cash et al.
    (NDSS'14), adaptively secure in the random-oracle model.

    The encrypted index is a flat dictionary mapping PRF-derived labels
    to masked row ids. A search token reveals one keyword's posting walk;
    leakage is the standard SSE trace (search pattern + access pattern),
    which is exactly what the SAGMA proof (§4.2) hands the simulator.

    SAGMA indexes bucket identifiers and filter keywords through this
    module. *)

module Prf = Sagma_crypto.Prf
module Drbg = Sagma_crypto.Drbg

type key = Prf.key

type index = {
  dict : (string, string) Hashtbl.t;  (** label → masked id *)
  entries : int;                      (** total postings *)
}

type token = {
  t_label : Prf.key;  (** K₁: label derivation *)
  t_mask : Prf.key;   (** K₂: id masking *)
}

val label_size : int
val id_size : int

val gen : Drbg.t -> key

val token : key -> string -> token
(** Per-keyword token (deterministic — token equality is the search
    pattern). *)

val token_id : token -> string
(** Opaque tag identifying a token; equal tags = same keyword. *)

val entry : token -> int -> int -> string * string
(** [entry t counter id] is the [(label, masked id)] pair for the
    [counter]-th posting of the token's keyword. Exposed for the
    simulator and for server-side appends. *)

val build : key -> (string * int list) list -> index
(** Build the encrypted index from keyword → matching ids. *)

val add : key -> index -> string -> counter:int -> int -> index
(** Append one posting ([counter] = current posting count of the
    keyword). Non-destructive: the input index remains valid. *)

val add_with_token : index -> token -> counter:int -> int -> index
(** Like {!add} but from a token — what a server does during remote
    appends (trading forward privacy for update support). *)

val search : index -> token -> int list
(** Walk the token's counters until a label misses; returns matching row
    ids in insertion order. *)

val size : index -> int

(** {1 Simulator} (for the §4.2 security experiment) *)

val simulate_index : Drbg.t -> entries:int -> index
(** Uniformly random dictionary of the given size. *)

val simulate_token : Drbg.t -> token

val encode_id : int -> string
val decode_id : string -> int

(* Dyadic range covering — the standard trick for range queries over
   single-keyword SSE (cf. Faber et al., ESORICS'15, which the SAGMA
   paper cites as composable filtering [11]).

   Values live in [0, 2^depth). Each value is indexed under depth+1
   keywords: its ancestors in the implicit binary trie, identified by
   (level, prefix) with prefix = v >> level. Any inclusive range [lo, hi]
   decomposes into at most 2·depth canonical dyadic intervals, so a range
   query becomes a union of that many keyword searches. The server learns
   the dyadic structure of the queried range and the matching rows —
   nothing about non-matching values beyond their cover membership. *)

type interval = { level : int; prefix : int }
(* Covers [prefix·2^level, (prefix+1)·2^level). *)

let interval_range (i : interval) : int * int =
  let lo = i.prefix lsl i.level in
  (lo, lo + (1 lsl i.level) - 1)

(* The depth+1 trie ancestors of a value — the keywords it is indexed
   under. *)
let keywords_for_value ~(depth : int) (v : int) : interval list =
  if v < 0 || (depth < 62 && v >= 1 lsl depth) then
    invalid_arg "Dyadic.keywords_for_value: out of domain";
  List.init (depth + 1) (fun level -> { level; prefix = v lsr level })

(* Minimal canonical cover of [lo, hi] by dyadic intervals: walk the
   segment tree from the root, emitting nodes fully inside the range. *)
let cover ~(depth : int) ~(lo : int) ~(hi : int) : interval list =
  if lo > hi then invalid_arg "Dyadic.cover: empty range";
  if lo < 0 || (depth < 62 && hi >= 1 lsl depth) then
    invalid_arg "Dyadic.cover: out of domain";
  let out = ref [] in
  let rec go (node : interval) =
    let node_lo, node_hi = interval_range node in
    if node_hi < lo || node_lo > hi then ()
    else if lo <= node_lo && node_hi <= hi then out := node :: !out
    else begin
      (* node.level > 0 here: a level-0 node is a single value and is
         either disjoint or contained. *)
      go { level = node.level - 1; prefix = node.prefix lsl 1 };
      go { level = node.level - 1; prefix = (node.prefix lsl 1) lor 1 }
    end
  in
  go { level = depth; prefix = 0 };
  List.rev !out

let keyword_tag (i : interval) : string = Printf.sprintf "%d:%d" i.level i.prefix

(* Membership oracle for tests. *)
let interval_contains (i : interval) (v : int) : bool =
  let lo, hi = interval_range i in
  lo <= v && v <= hi

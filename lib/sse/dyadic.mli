(** Dyadic range covering — the standard construction for range queries
    over single-keyword SSE (cf. Faber et al. [11], cited by the SAGMA
    paper as composable filtering).

    Values live in [\[0, 2^depth)]; each is indexed under its depth+1
    binary-trie ancestors, and any inclusive range decomposes into at
    most 2·depth canonical dyadic intervals — a range query is a union of
    that many keyword searches. *)

type interval = { level : int; prefix : int }
(** Covers [\[prefix·2^level, (prefix+1)·2^level)]. *)

val interval_range : interval -> int * int
(** Inclusive bounds. *)

val keywords_for_value : depth:int -> int -> interval list
(** The trie ancestors a stored value is indexed under.
    @raise Invalid_argument out of domain. *)

val cover : depth:int -> lo:int -> hi:int -> interval list
(** Minimal canonical cover of [\[lo, hi\]], in ascending order.
    @raise Invalid_argument on empty or out-of-domain ranges. *)

val keyword_tag : interval -> string
val interval_contains : interval -> int -> bool

(* Searchable symmetric encryption: the Π_bas scheme of Cash et al.
   (NDSS'14), adaptively secure in the random-oracle model.

   The encrypted index is a flat dictionary. For keyword [w] with matching
   document ids [id_0, id_1, ...], the client derives two sub-keys
   (K1, K2) = PRF_K(w) and stores, for each counter c:

       label  = PRF_{K1}(c)
       value  = id_c XOR PRF_{K2}(c)

   A search token for [w] is (K1, K2); the server walks counters until a
   label misses. Leakage is the standard SSE trace: the search pattern
   (token repetition) and the access pattern (matching ids), which is
   exactly the leakage the SAGMA proof (§4.2) forwards to the simulator.

   SAGMA uses this index twice: for bucket identifiers ("col:bucket") and
   for filtering keywords ("col=value"). *)

module Prf = Sagma_crypto.Prf
module Drbg = Sagma_crypto.Drbg

type key = Prf.key

type index = {
  dict : (string, string) Hashtbl.t;  (* label -> masked id *)
  entries : int;                      (* total (keyword, id) pairs *)
}

type token = {
  t_label : Prf.key;  (* K1: label derivation *)
  t_mask : Prf.key;   (* K2: id masking *)
}

let label_size = 16
let id_size = 8

let gen (drbg : Drbg.t) : key = Prf.gen_key drbg

let token (k : key) (w : string) : token =
  { t_label = Prf.derive k ~domain:("sse-label:" ^ w);
    t_mask = Prf.derive k ~domain:("sse-mask:" ^ w) }

(* The token is the per-keyword key pair; its serialization identifies the
   keyword to the server across queries (the search pattern). *)
let token_id (t : token) : string = Sagma_crypto.Encoding.to_hex (String.sub t.t_label 0 8)

let encode_id (id : int) : string =
  String.init id_size (fun i -> Char.chr ((id lsr (8 * (id_size - 1 - i))) land 0xff))

let decode_id (s : string) : int =
  let v = ref 0 in
  String.iter (fun c -> v := (!v lsl 8) lor Char.code c) s;
  !v

let entry (t : token) (counter : int) (id : int) : string * string =
  let c = string_of_int counter in
  let label = Prf.eval_trunc t.t_label c ~len:label_size in
  let mask = Prf.eval_trunc t.t_mask c ~len:id_size in
  (label, Sagma_crypto.Encoding.xor (encode_id id) mask)

(* [build k assoc] creates the encrypted index for an association list of
   keyword -> matching ids. *)
let build (k : key) (assoc : (string * int list) list) : index =
  let entries = List.fold_left (fun acc (_, ids) -> acc + List.length ids) 0 assoc in
  let dict = Hashtbl.create (2 * entries) in
  List.iter
    (fun (w, ids) ->
      let t = token k w in
      List.iteri
        (fun counter id ->
          let label, value = entry t counter id in
          if Hashtbl.mem dict label then failwith "Sse.build: label collision";
          Hashtbl.add dict label value)
        ids)
    assoc;
  { dict; entries }

(* [add k index w id] appends one posting; the caller must pass the
   current result-count for [w] as the counter (supports the paper's
   EncRow-based updates). Non-destructive: the input index is copied, so
   values holding the old index stay valid (an append costs O(index)). *)
let add (k : key) (index : index) (w : string) ~(counter : int) (id : int) : index =
  let t = token k w in
  let label, value = entry t counter id in
  if Hashtbl.mem index.dict label then failwith "Sse.add: label collision";
  let dict = Hashtbl.copy index.dict in
  Hashtbl.add dict label value;
  { dict; entries = index.entries + 1 }

(* Token-based insertion: everything needed to extend a keyword's posting
   list is derivable from its token, so a server holding a token (e.g.
   during a remote append) can insert the next entry itself. This trades
   forward privacy for update support, like most token-revealing dynamic
   SSE schemes. Non-destructive, like {!add}. *)
let add_with_token (index : index) (t : token) ~(counter : int) (id : int) : index =
  let label, value = entry t counter id in
  if Hashtbl.mem index.dict label then failwith "Sse.add_with_token: label collision";
  let dict = Hashtbl.copy index.dict in
  Hashtbl.add dict label value;
  { dict; entries = index.entries + 1 }

let m_searches = Sagma_obs.Metrics.counter "sse.searches"
let m_postings = Sagma_obs.Metrics.counter "sse.postings_scanned"

(* Server-side search: walk counters until a label misses. *)
let search (index : index) (t : token) : int list =
  Sagma_obs.Metrics.incr m_searches;
  let rec go counter acc =
    let c = string_of_int counter in
    let label = Prf.eval_trunc t.t_label c ~len:label_size in
    match Hashtbl.find_opt index.dict label with
    | None -> List.rev acc
    | Some masked ->
      Sagma_obs.Metrics.incr m_postings;
      let mask = Prf.eval_trunc t.t_mask c ~len:id_size in
      go (counter + 1) (decode_id (Sagma_crypto.Encoding.xor masked mask) :: acc)
  in
  go 0 []

let size (index : index) = Hashtbl.length index.dict

(* --- simulator ----------------------------------------------------------

   For the security experiment (§4.2): given only the index size and, per
   query, the access pattern, produce an index and tokens with the same
   distribution as the real ones. Labels and masked values are uniformly
   random in the real scheme (PRF outputs on fresh points), so the
   simulator samples them uniformly and programs consistency. *)

let simulate_index (drbg : Drbg.t) ~(entries : int) : index =
  let dict = Hashtbl.create (2 * entries) in
  for _ = 1 to entries do
    Hashtbl.add dict (Drbg.bytes drbg label_size) (Drbg.bytes drbg id_size)
  done;
  { dict; entries }

let simulate_token (drbg : Drbg.t) : token =
  { t_label = Drbg.bytes drbg Prf.key_size; t_mask = Drbg.bytes drbg Prf.key_size }

(* OXT — Oblivious Cross-Tags (Cash, Jarecki, Jutla, Krawczyk, Roşu,
   Steiner; CRYPTO'13): searchable symmetric encryption for conjunctive
   queries w₁ ∧ w₂ ∧ … ∧ wₙ. This is reference [6] of the SAGMA paper,
   cited in §3.2/§3.4 as the way to "determine joint bucket membership
   without leaking the bucket membership of individual attributes".

   Data structures:
   - TSet: for each keyword w and matching id (counter c), an entry
       label  = PRF-derived dictionary key (as in Π_bas)
       e      = id masked with a per-entry PRF pad
       y      = xind · z⁻¹ mod q, with xind = Fp(K_I, id) and
                z = Fp(K_Z, w‖c)
   - XSet: { (Fp(K_X, w) · xind) · G } — "cross tags", one per (w, id)
     pair, as points of a prime-order curve subgroup.

   Search is two-round: the client sends the s-term's stag, learns the
   match count, then sends per-counter x-tokens
       xtoken[c][i] = (z_c · Fp(K_X, wᵢ)) · G
   for the remaining terms. The server checks y_c · xtoken[c][i] ∈ XSet:
   y·(z·Fx)·G = xind·Fx·G, so membership holds exactly when id also
   matches wᵢ. The server learns the s-term's result count and which of
   its entries satisfy the conjunction — never the other keywords'
   individual posting lists.

   The group is the prime-order subgroup from {!Sagma_pairing} (no
   pairing evaluation needed, only scalar multiplication). *)

module Z = Sagma_bigint.Bigint
module Curve = Sagma_pairing.Curve
module Pairing = Sagma_pairing.Pairing
module Prf = Sagma_crypto.Prf
module Drbg = Sagma_crypto.Drbg
module Encoding = Sagma_crypto.Encoding

type params = {
  group : Pairing.group;  (* prime order n *)
  base : Curve.point;     (* generator G *)
}

(* A fixed 127-bit prime group order: parameters are scheme-wide and
   carry no secrets. *)
let default_order = Z.of_string "170141183460469231731687303715884105727"

let make_params ?(order = default_order) () : params =
  let group = Pairing.make_group order in
  let seed = Drbg.create "oxt-generator" in
  { group; base = Pairing.random_order_n_point group (Drbg.rng seed) }

type key = {
  k_t : Prf.key;  (* TSet label/mask derivations *)
  k_x : Prf.key;  (* cross-tag exponents per keyword *)
  k_i : Prf.key;  (* per-id blinding exponent xind *)
  k_z : Prf.key;  (* per-(keyword, counter) exponent z *)
}

let gen (drbg : Drbg.t) : key =
  let master = Prf.gen_key drbg in
  { k_t = Prf.derive master ~domain:"oxt-t";
    k_x = Prf.derive master ~domain:"oxt-x";
    k_i = Prf.derive master ~domain:"oxt-i";
    k_z = Prf.derive master ~domain:"oxt-z" }

(* PRF into Z_n^* (rejecting 0; bias negligible for ~127-bit n). *)
let prf_exponent (params : params) (k : Prf.key) (input : string) : Z.t =
  let n = params.group.Pairing.n in
  let rec go i =
    let raw = Prf.eval k (Printf.sprintf "%s#%d" input i) in
    let v = Z.erem (Z.of_bytes_be raw) n in
    if Z.is_zero v then go (i + 1) else v
  in
  go 0

type tset_entry = {
  e : string;  (* masked id *)
  y : Z.t;     (* xind · z⁻¹ mod n *)
}

type index = {
  tset : (string, tset_entry) Hashtbl.t;  (* label -> entry *)
  xset : (string, unit) Hashtbl.t;        (* serialized cross tags *)
}

let label_size = 16
let id_size = 8

let tset_label (k : key) (w : string) (c : int) : string =
  Prf.eval_trunc (Prf.derive k.k_t ~domain:("label:" ^ w)) (string_of_int c) ~len:label_size

let tset_mask (k : key) (w : string) (c : int) : string =
  Prf.eval_trunc (Prf.derive k.k_t ~domain:("mask:" ^ w)) (string_of_int c) ~len:id_size

let xind (params : params) (k : key) (id : int) : Z.t =
  prf_exponent params k.k_i (string_of_int id)

let keyword_exponent (params : params) (k : key) (w : string) : Z.t =
  prf_exponent params k.k_x w

(* [build params k assoc] creates the encrypted structures from keyword →
   matching ids. *)
let build (params : params) (k : key) (assoc : (string * int list) list) : index =
  let n = params.group.Pairing.n in
  let curve = params.group.Pairing.curve in
  let total = List.fold_left (fun acc (_, ids) -> acc + List.length ids) 0 assoc in
  let tset = Hashtbl.create (2 * total) in
  let xset = Hashtbl.create (2 * total) in
  List.iter
    (fun (w, ids) ->
      let fx = keyword_exponent params k w in
      List.iteri
        (fun c id ->
          let xi = xind params k id in
          let z = prf_exponent params k.k_z (Printf.sprintf "%s|%d" w c) in
          let y = Z.mulm xi (Z.invm_exn z n) n in
          let e = Encoding.xor (Sse.encode_id id) (tset_mask k w c) in
          let label = tset_label k w c in
          if Hashtbl.mem tset label then failwith "Oxt.build: label collision";
          Hashtbl.add tset label { e; y };
          let xtag = Curve.mul curve (Z.mulm fx xi n) params.base in
          Hashtbl.replace xset (Curve.serialize xtag) ())
        ids)
    assoc;
  { tset; xset }

(* [add params k index w ~counter id] appends one posting (counter =
   current posting count of [w]). Non-destructive, like Π_bas's add. *)
let add (params : params) (k : key) (index : index) (w : string) ~(counter : int) (id : int) :
    index =
  let n = params.group.Pairing.n in
  let curve = params.group.Pairing.curve in
  let label = tset_label k w counter in
  if Hashtbl.mem index.tset label then failwith "Oxt.add: label collision";
  let tset = Hashtbl.copy index.tset in
  let xset = Hashtbl.copy index.xset in
  let xi = xind params k id in
  let z = prf_exponent params k.k_z (Printf.sprintf "%s|%d" w counter) in
  Hashtbl.add tset label
    { e = Encoding.xor (Sse.encode_id id) (tset_mask k w counter);
      y = Z.mulm xi (Z.invm_exn z n) n };
  let fx = keyword_exponent params k w in
  Hashtbl.replace xset (Curve.serialize (Curve.mul curve (Z.mulm fx xi n) params.base)) ();
  { tset; xset }

(* --- tokens ------------------------------------------------------------------ *)

type stag = { s_keyword_key : Prf.key; s_mask_key : Prf.key }
(* Keys letting the server walk (and unmask ids of) the s-term's TSet
   entries — same leakage as a Π_bas search on the s-term. *)

let stag (k : key) (w : string) : stag =
  { s_keyword_key = Prf.derive k.k_t ~domain:("label:" ^ w);
    s_mask_key = Prf.derive k.k_t ~domain:("mask:" ^ w) }

(* Round 1 (server): how many entries the s-term has. *)
let stag_count (index : index) (st : stag) : int =
  let rec go c =
    let label = Prf.eval_trunc st.s_keyword_key (string_of_int c) ~len:label_size in
    if Hashtbl.mem index.tset label then go (c + 1) else c
  in
  go 0

(* Round 2 (client): x-tokens for the other terms, one row per counter. *)
let xtokens (params : params) (k : key) ~(s_term : string) ~(x_terms : string list)
    ~(count : int) : Curve.point array array =
  let n = params.group.Pairing.n in
  let curve = params.group.Pairing.curve in
  let fxs = List.map (keyword_exponent params k) x_terms in
  Array.init count (fun c ->
      let z = prf_exponent params k.k_z (Printf.sprintf "%s|%d" s_term c) in
      Array.of_list
        (List.map (fun fx -> Curve.mul curve (Z.mulm z fx n) params.base) fxs))

let m_searches = Sagma_obs.Metrics.counter "oxt.searches"
let m_postings = Sagma_obs.Metrics.counter "oxt.postings_scanned"

(* Round 2 (server): filter the s-term's entries by cross-tag membership
   and return the unmasked matching ids. *)
let search (params : params) (index : index) (st : stag)
    (xtoks : Curve.point array array) : int list =
  Sagma_obs.Metrics.incr m_searches;
  let curve = params.group.Pairing.curve in
  let out = ref [] in
  Array.iteri
    (fun c per_term ->
      let label = Prf.eval_trunc st.s_keyword_key (string_of_int c) ~len:label_size in
      match Hashtbl.find_opt index.tset label with
      | None -> ()
      | Some entry ->
        Sagma_obs.Metrics.incr m_postings;
        let all_match =
          Array.for_all
            (fun xtok -> Hashtbl.mem index.xset (Curve.serialize (Curve.mul curve entry.y xtok)))
            per_term
        in
        if all_match then begin
          let mask = Prf.eval_trunc st.s_mask_key (string_of_int c) ~len:id_size in
          out := Sse.decode_id (Encoding.xor entry.e mask) :: !out
        end)
    xtoks;
  List.rev !out

(* One-shot conjunction (both rounds; a real deployment splits them
   across the network). The first term is used as the s-term — callers
   should pass the least-frequent keyword first, as the OXT paper
   prescribes. *)
let conjunction (params : params) (k : key) (index : index) (terms : string list) : int list =
  match terms with
  | [] -> invalid_arg "Oxt.conjunction: empty"
  | [ w ] ->
    (* Single keyword: plain TSet walk. *)
    let st = stag k w in
    let count = stag_count index st in
    search params index st (Array.make count [||])
  | s_term :: x_terms ->
    let st = stag k s_term in
    let count = stag_count index st in
    search params index st (xtokens params k ~s_term ~x_terms ~count)

let tset_size (index : index) : int = Hashtbl.length index.tset
let xset_size (index : index) : int = Hashtbl.length index.xset

(* Span tracing, domain-safe: every domain keeps its own stack of open
   frames in domain-local storage, so spans opened on a pool worker can
   never race the stack of the domain that submitted the work. A worker
   running a task for another domain's request inherits that request's
   context (see [capture]/[with_ctx]): its spans attach under the
   submitting frame, so each request still builds one intact tree no
   matter how many domains executed parts of it.

   Finished trees land in one of two mutex-guarded bounded rings:
   ambient roots (spans closed outside any [with_request], the CLI and
   bench path) in [completed_roots], request traces in
   [completed_requests]. Both are capped so a long-running server cannot
   grow without bound, and both are read/reset under the same lock —
   the old plain-[ref] completed list raced [roots]/[reset] against
   whichever domain finished a root span.

   Resource accounting rides the same structures. Every completed
   request carries a [gc_delta] (Gc.quick_stat differential over the
   request, on the domain that ran it), and when the profiler
   ({!Sagma_obs.Prof}) is active each request also accumulates a
   span-name → allocated-words table: either from Gc.Memprof samples
   (via [note_alloc]) or, on runtimes without multicore memprof, from
   allocation deltas measured at span close (via the [prof_hook]). *)

type span = {
  name : string;
  t0 : float;
  ms : float;
  children : span list;
}

type cost = {
  pairings : int;
  miller_steps : int;
  bgn_mul : int;
  dlog_solves : int;
  dlog_giant_steps : int;
  sse_postings : int;
  agg_rows : int;
  agg_buckets : int;
  bytes_in : int;
  bytes_out : int;
}

let zero_cost =
  { pairings = 0; miller_steps = 0; bgn_mul = 0; dlog_solves = 0; dlog_giant_steps = 0;
    sse_postings = 0; agg_rows = 0; agg_buckets = 0; bytes_in = 0; bytes_out = 0 }

let cost_fields (c : cost) : (string * int) list =
  [ ("pairings", c.pairings); ("miller_steps", c.miller_steps); ("bgn_mul", c.bgn_mul);
    ("dlog_solves", c.dlog_solves); ("dlog_giant_steps", c.dlog_giant_steps);
    ("sse_postings", c.sse_postings); ("agg_rows", c.agg_rows);
    ("agg_buckets", c.agg_buckets); ("bytes_in", c.bytes_in); ("bytes_out", c.bytes_out) ]

(* Per-request GC differential, all in words (one word = 8 bytes on
   64-bit). Word counts come from [Gc.quick_stat], which on OCaml 5 is
   domain-local for the allocation counters: a request whose row work
   ran on pool domains undercounts their share, which is the right
   trade — the numbers are cheap, monotone, and attribute the
   coordinating domain's allocation exactly. *)
type gc_delta = {
  gc_minor_words : int;
  gc_promoted_words : int;
  gc_major_words : int;
  gc_minor_collections : int;
  gc_major_collections : int;
  gc_heap_words : int;      (* major heap size when the request finished *)
  gc_heap_growth : int;     (* heap_words delta over the request *)
}

let zero_gc =
  { gc_minor_words = 0; gc_promoted_words = 0; gc_major_words = 0; gc_minor_collections = 0;
    gc_major_collections = 0; gc_heap_words = 0; gc_heap_growth = 0 }

let gc_fields (g : gc_delta) : (string * int) list =
  [ ("minor_words", g.gc_minor_words); ("promoted_words", g.gc_promoted_words);
    ("major_words", g.gc_major_words); ("minor_collections", g.gc_minor_collections);
    ("major_collections", g.gc_major_collections); ("heap_words", g.gc_heap_words);
    ("heap_growth", g.gc_heap_growth) ]

type rtrace = {
  r_id : string;
  r_start : float;
  r_root : span;
  mutable r_cost : cost;
  mutable r_gc : gc_delta;
  mutable r_alloc : (string * int) list;  (* span name → sampled words, largest first *)
}

(* --- per-domain state ------------------------------------------------------- *)

(* [f_alloc0] is the domain's allocated-words counter when the frame
   opened, or -1 when the profiler was off at open time; [f_child_w]
   accumulates the words charged to same-domain children so the close
   can compute the frame's self-allocation. *)
type frame = {
  f_name : string;
  f_start : float;
  mutable children_rev : span list;
  mutable f_alloc0 : float;
  mutable f_child_w : float;
}

(* The per-request allocation table (span name → words). Written under
   [lock]: samples can land from any domain that inherited the request
   context. *)
type alloc_tab = (string, int) Hashtbl.t

type dstate = {
  mutable d_base : frame option;  (* inherited parent for pool tasks *)
  mutable d_stack : frame list;   (* frames opened on this domain, innermost first *)
  mutable d_alloc : alloc_tab option;  (* current request's allocation table *)
  mutable d_req_id : string option;  (* id of the request being traced *)
}

let state : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { d_base = None; d_stack = []; d_alloc = None; d_req_id = None })

(* One lock covers cross-domain frame attachment, both completed rings
   and the per-request allocation tables. Span closes are coarse
   (request phases and aggregation chunks, never per-row work), so the
   serialization is unmeasurable. *)
let lock = Mutex.create ()

let completed_roots : span Queue.t = Queue.create ()
let completed_requests : rtrace Queue.t = Queue.create ()
let max_completed = 1024

let push_bounded (q : 'a Queue.t) (v : 'a) : unit =
  Queue.push v q;
  if Queue.length q > max_completed then ignore (Queue.pop q)

let now () = Unix.gettimeofday ()

(* --- profiler plumbing ------------------------------------------------------- *)

(* When set, span closes measure their allocation delta and report
   (name, self words) — the fallback sampler for runtimes where
   Gc.Memprof is unavailable. Checked once per span close; [None] keeps
   the tracing fast path free of any Gc call. *)
let prof_hook : (string -> int -> unit) option Atomic.t = Atomic.make None

let set_prof_hook h = Atomic.set prof_hook h

let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let current_span_name () : string option =
  let st = Domain.DLS.get state in
  match st.d_stack with
  | fr :: _ -> Some fr.f_name
  | [] -> (match st.d_base with Some fr -> Some fr.f_name | None -> None)

(* Charge [words] to [span] in the current request's allocation table
   (a no-op outside a profiled request). Callable from any domain that
   inherited the request context — Memprof callbacks run on the
   allocating domain, which is exactly where d_alloc points at the
   right table. *)
let note_alloc ~(span : string) ~(words : int) : unit =
  if words > 0 then begin
    let st = Domain.DLS.get state in
    match st.d_alloc with
    | None -> ()
    | Some tab ->
      Mutex.lock lock;
      let prev = Option.value ~default:0 (Hashtbl.find_opt tab span) in
      Hashtbl.replace tab span (prev + words);
      Mutex.unlock lock
  end

let frame_alloc_base () =
  match Atomic.get prof_hook with None -> -1. | Some _ -> allocated_words ()

(* Self-allocation of a closing frame: total words since open minus the
   words already charged to same-domain children. The total (not the
   self part) rolls up into the parent's child counter so nesting never
   double-counts. Returns 0 when the profiler was off at open time or
   is off now. *)
let frame_self_words (st : dstate) (fr : frame) : int =
  if fr.f_alloc0 < 0. then 0
  else
    match Atomic.get prof_hook with
    | None -> 0
    | Some _ ->
      let total = allocated_words () -. fr.f_alloc0 in
      (match st.d_stack with
       | parent :: _ -> parent.f_child_w <- parent.f_child_w +. total
       | [] -> ());
      int_of_float (Float.max 0. (total -. fr.f_child_w))

let close_frame (st : dstate) (fr : frame) : unit =
  let ms = (now () -. fr.f_start) *. 1000. in
  (match st.d_stack with
   | top :: rest when top == fr -> st.d_stack <- rest
   | _ -> () (* unbalanced close: drop rather than corrupt the stack *));
  let self_w = frame_self_words st fr in
  if self_w > 0 then begin
    note_alloc ~span:fr.f_name ~words:self_w;
    match Atomic.get prof_hook with Some hook -> hook fr.f_name self_w | None -> ()
  end;
  let sp = { name = fr.f_name; t0 = fr.f_start; ms; children = List.rev fr.children_rev } in
  Mutex.lock lock;
  (match st.d_stack with
   | parent :: _ -> parent.children_rev <- sp :: parent.children_rev
   | [] ->
     (match st.d_base with
      | Some parent -> parent.children_rev <- sp :: parent.children_rev
      | None -> push_bounded completed_roots sp));
  Mutex.unlock lock

let with_span name f =
  if not !Metrics.enabled then f ()
  else begin
    let st = Domain.DLS.get state in
    let fr =
      { f_name = name; f_start = now (); children_rev = [];
        f_alloc0 = frame_alloc_base (); f_child_w = 0. }
    in
    st.d_stack <- fr :: st.d_stack;
    match f () with
    | v ->
      close_frame st fr;
      v
    | exception e ->
      close_frame st fr;
      raise e
  end

(* --- context inheritance ----------------------------------------------------- *)

type ctx = {
  x_parent : frame option;
  x_scope : Metrics.scope option;
  x_alloc : alloc_tab option;
  x_req_id : string option;
}

let capture () : ctx =
  if not !Metrics.enabled then { x_parent = None; x_scope = None; x_alloc = None; x_req_id = None }
  else begin
    let st = Domain.DLS.get state in
    let parent = match st.d_stack with fr :: _ -> Some fr | [] -> st.d_base in
    { x_parent = parent; x_scope = Metrics.scope_current (); x_alloc = st.d_alloc;
      x_req_id = st.d_req_id }
  end

let with_ctx (ctx : ctx) (f : unit -> 'a) : 'a =
  let st = Domain.DLS.get state in
  let saved_base = st.d_base and saved_stack = st.d_stack and saved_alloc = st.d_alloc in
  let saved_req_id = st.d_req_id in
  let saved_scope = Metrics.scope_swap ctx.x_scope in
  st.d_base <- ctx.x_parent;
  st.d_stack <- [];
  st.d_alloc <- ctx.x_alloc;
  st.d_req_id <- ctx.x_req_id;
  Fun.protect
    ~finally:(fun () ->
      ignore (Metrics.scope_swap saved_scope);
      st.d_base <- saved_base;
      st.d_stack <- saved_stack;
      st.d_alloc <- saved_alloc;
      st.d_req_id <- saved_req_id)
    f

(* The id of the request currently being traced on this domain (set by
   [with_request_full], inherited through [capture]/[with_ctx]). A
   query router propagates this across the coordinator → shard hop as
   the v4 trace context, so both nodes record the same trace id. *)
let current_request_id () : string option = (Domain.DLS.get state).d_req_id

(* Graft an already-completed span — e.g. one rebuilt from a shard's
   EXPLAIN timings — under the innermost open frame, so a distributed
   request renders as one tree. No-op outside any open span. *)
let attach_span (sp : span) : unit =
  if !Metrics.enabled then begin
    let st = Domain.DLS.get state in
    match (st.d_stack, st.d_base) with
    | fr :: _, _ | [], Some fr ->
      Mutex.lock lock;
      fr.children_rev <- sp :: fr.children_rev;
      Mutex.unlock lock
    | [], None -> ()
  end

(* --- per-request traces ------------------------------------------------------ *)

let trace_seq = Atomic.make 0

let next_trace_id () =
  Printf.sprintf "t%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add trace_seq 1 + 1)

let cost_of_scope (sc : Metrics.scope) : cost =
  let g = Metrics.scope_get sc in
  { pairings = g "pairing.pairings"; miller_steps = g "pairing.miller_steps";
    bgn_mul = g "bgn.mul"; dlog_solves = g "bgn.dlog.solves";
    dlog_giant_steps = g "bgn.dlog.giant_steps";
    sse_postings = g "sse.postings_scanned" + g "oxt.postings_scanned";
    agg_rows = g "scheme.agg.rows"; agg_buckets = g "scheme.agg.joint_buckets";
    bytes_in = 0; bytes_out = 0 }

let gc_delta_of ~(before : Gc.stat) ~(after : Gc.stat) : gc_delta =
  { gc_minor_words = int_of_float (after.Gc.minor_words -. before.Gc.minor_words);
    gc_promoted_words = int_of_float (after.Gc.promoted_words -. before.Gc.promoted_words);
    gc_major_words = int_of_float (after.Gc.major_words -. before.Gc.major_words);
    gc_minor_collections = after.Gc.minor_collections - before.Gc.minor_collections;
    gc_major_collections = after.Gc.major_collections - before.Gc.major_collections;
    gc_heap_words = after.Gc.heap_words;
    gc_heap_growth = after.Gc.heap_words - before.Gc.heap_words }

let empty_root = { name = "request"; t0 = 0.; ms = 0.; children = [] }

let alloc_table_entries (tab : alloc_tab) : (string * int) list =
  Mutex.lock lock;
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tab [] in
  Mutex.unlock lock;
  List.sort (fun (_, a) (_, b) -> compare b a) l

let with_request_full ?trace_id f =
  if not !Metrics.enabled then begin
    let v = f () in
    ( v,
      { r_id = (match trace_id with Some id -> id | None -> ""); r_start = 0.;
        r_root = empty_root; r_cost = zero_cost; r_gc = zero_gc; r_alloc = [] } )
  end
  else begin
    let id = match trace_id with Some id -> id | None -> next_trace_id () in
    let st = Domain.DLS.get state in
    let saved_base = st.d_base and saved_stack = st.d_stack and saved_alloc = st.d_alloc in
    let saved_req_id = st.d_req_id in
    let sc = Metrics.scope_create () in
    let saved_scope = Metrics.scope_swap (Some sc) in
    let gc0 = Gc.quick_stat () in
    let start = now () in
    let root =
      { f_name = "request"; f_start = start; children_rev = [];
        f_alloc0 = frame_alloc_base (); f_child_w = 0. }
    in
    st.d_base <- None;
    st.d_stack <- [ root ];
    st.d_req_id <- Some id;
    st.d_alloc <-
      (match Atomic.get prof_hook with Some _ -> Some (Hashtbl.create 8) | None -> None);
    let tab = st.d_alloc in
    let finish () =
      let ms = (now () -. start) *. 1000. in
      (* Root self-allocation: measure before restoring the stack so the
         frame's children counter is complete. The stack is forced to
         [] first so the root's total does not roll up anywhere. *)
      st.d_stack <- [];
      let root_w = frame_self_words st root in
      st.d_stack <- saved_stack;
      st.d_base <- saved_base;
      st.d_alloc <- saved_alloc;
      st.d_req_id <- saved_req_id;
      ignore (Metrics.scope_swap saved_scope);
      if root_w > 0 then begin
        (match tab with
         | Some t ->
           Mutex.lock lock;
           let prev = Option.value ~default:0 (Hashtbl.find_opt t "request") in
           Hashtbl.replace t "request" (prev + root_w);
           Mutex.unlock lock
         | None -> ());
        match Atomic.get prof_hook with Some hook -> hook "request" root_w | None -> ()
      end;
      let sp = { name = "request"; t0 = start; ms; children = List.rev root.children_rev } in
      let gc = gc_delta_of ~before:gc0 ~after:(Gc.quick_stat ()) in
      let alloc = match tab with Some t -> alloc_table_entries t | None -> [] in
      let rt =
        { r_id = id; r_start = start; r_root = sp; r_cost = cost_of_scope sc; r_gc = gc;
          r_alloc = alloc }
      in
      Mutex.lock lock;
      push_bounded completed_requests rt;
      Mutex.unlock lock;
      rt
    in
    match f () with
    | v -> (v, finish ())
    | exception e ->
      ignore (finish ());
      raise e
  end

let with_request ?trace_id f =
  let v, rt = with_request_full ?trace_id f in
  (v, rt.r_root)

let set_cost (rt : rtrace) (c : cost) : unit = rt.r_cost <- c

(* --- completed rings --------------------------------------------------------- *)

let drain (q : 'a Queue.t) : 'a list =
  Mutex.lock lock;
  let l = List.rev (Queue.fold (fun acc v -> v :: acc) [] q) in
  Mutex.unlock lock;
  l

let roots () : span list = drain completed_roots
let requests () : rtrace list = drain completed_requests

let reset () =
  let st = Domain.DLS.get state in
  st.d_base <- None;
  st.d_stack <- [];
  st.d_alloc <- None;
  st.d_req_id <- None;
  Mutex.lock lock;
  Queue.clear completed_roots;
  Queue.clear completed_requests;
  Mutex.unlock lock

(* --- rendering --------------------------------------------------------------- *)

let phase_timings (s : span) : (string * float) list =
  List.map (fun c -> (c.name, c.ms)) s.children

let rec pp_indented fmt indent (s : span) =
  Format.fprintf fmt "%s%-*s %8.1f ms@," indent (max 1 (32 - String.length indent)) s.name s.ms;
  List.iter (pp_indented fmt (indent ^ "  ")) s.children

let pp fmt s =
  Format.fprintf fmt "@[<v>";
  pp_indented fmt "" s;
  Format.fprintf fmt "@]"

let rec to_json (s : span) : string =
  Printf.sprintf "{\"name\":\"%s\",\"ms\":%.3f,\"children\":[%s]}"
    (Metrics.json_escape s.name) s.ms
    (String.concat "," (List.map to_json s.children))

let cost_to_json (c : cost) : string =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" k v) (cost_fields c))
  ^ "}"

let gc_to_json (g : gc_delta) : string =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" k v) (gc_fields g))
  ^ "}"

let alloc_to_json (a : (string * int) list) : string =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (Metrics.json_escape k) v) a)
  ^ "}"

(* Chrome trace-event JSON (the chrome://tracing / Perfetto format):
   each span becomes one "X" complete event with microsecond timestamps;
   traces are separated by thread id so concurrent requests render as
   parallel tracks. The root event carries the trace id, cost block, GC
   differential and (when the profiler ran) allocation table in
   [args]. *)
let chrome_json (ts : rtrace list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf s
  in
  List.iteri
    (fun i rt ->
      let tid = i + 1 in
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
            \"args\":{\"name\":\"%s\"}}"
           tid (Metrics.json_escape rt.r_id));
      let rec walk (sp : span) =
        let args =
          if sp == rt.r_root then
            Printf.sprintf ",\"args\":{\"trace_id\":\"%s\",\"cost\":%s,\"gc\":%s%s}"
              (Metrics.json_escape rt.r_id) (cost_to_json rt.r_cost) (gc_to_json rt.r_gc)
              (if rt.r_alloc = [] then ""
               else Printf.sprintf ",\"alloc_words\":%s" (alloc_to_json rt.r_alloc))
          else ""
        in
        emit
          (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":1,\"tid\":%d%s}"
             (Metrics.json_escape sp.name) (sp.t0 *. 1e6) (sp.ms *. 1000.) tid args);
        List.iter walk sp.children
      in
      walk rt.r_root)
    ts;
  Buffer.add_string buf "]}";
  Buffer.contents buf

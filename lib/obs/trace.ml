(* Span tracing, domain-safe: every domain keeps its own stack of open
   frames in domain-local storage, so spans opened on a pool worker can
   never race the stack of the domain that submitted the work. A worker
   running a task for another domain's request inherits that request's
   context (see [capture]/[with_ctx]): its spans attach under the
   submitting frame, so each request still builds one intact tree no
   matter how many domains executed parts of it.

   Finished trees land in one of two mutex-guarded bounded rings:
   ambient roots (spans closed outside any [with_request], the CLI and
   bench path) in [completed_roots], request traces in
   [completed_requests]. Both are capped so a long-running server cannot
   grow without bound, and both are read/reset under the same lock —
   the old plain-[ref] completed list raced [roots]/[reset] against
   whichever domain finished a root span. *)

type span = {
  name : string;
  t0 : float;
  ms : float;
  children : span list;
}

type cost = {
  pairings : int;
  miller_steps : int;
  bgn_mul : int;
  dlog_solves : int;
  dlog_giant_steps : int;
  sse_postings : int;
  agg_rows : int;
  agg_buckets : int;
  bytes_in : int;
  bytes_out : int;
}

let zero_cost =
  { pairings = 0; miller_steps = 0; bgn_mul = 0; dlog_solves = 0; dlog_giant_steps = 0;
    sse_postings = 0; agg_rows = 0; agg_buckets = 0; bytes_in = 0; bytes_out = 0 }

let cost_fields (c : cost) : (string * int) list =
  [ ("pairings", c.pairings); ("miller_steps", c.miller_steps); ("bgn_mul", c.bgn_mul);
    ("dlog_solves", c.dlog_solves); ("dlog_giant_steps", c.dlog_giant_steps);
    ("sse_postings", c.sse_postings); ("agg_rows", c.agg_rows);
    ("agg_buckets", c.agg_buckets); ("bytes_in", c.bytes_in); ("bytes_out", c.bytes_out) ]

type rtrace = {
  r_id : string;
  r_start : float;
  r_root : span;
  mutable r_cost : cost;
}

(* --- per-domain state ------------------------------------------------------- *)

type frame = { f_name : string; f_start : float; mutable children_rev : span list }

type dstate = {
  mutable d_base : frame option;  (* inherited parent for pool tasks *)
  mutable d_stack : frame list;   (* frames opened on this domain, innermost first *)
}

let state : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { d_base = None; d_stack = [] })

(* One lock covers cross-domain frame attachment and both completed
   rings. Span closes are coarse (request phases and aggregation chunks,
   never per-row work), so the serialization is unmeasurable. *)
let lock = Mutex.create ()

let completed_roots : span Queue.t = Queue.create ()
let completed_requests : rtrace Queue.t = Queue.create ()
let max_completed = 1024

let push_bounded (q : 'a Queue.t) (v : 'a) : unit =
  Queue.push v q;
  if Queue.length q > max_completed then ignore (Queue.pop q)

let now () = Unix.gettimeofday ()

let close_frame (st : dstate) (fr : frame) : unit =
  let ms = (now () -. fr.f_start) *. 1000. in
  (match st.d_stack with
   | top :: rest when top == fr -> st.d_stack <- rest
   | _ -> () (* unbalanced close: drop rather than corrupt the stack *));
  let sp = { name = fr.f_name; t0 = fr.f_start; ms; children = List.rev fr.children_rev } in
  Mutex.lock lock;
  (match st.d_stack with
   | parent :: _ -> parent.children_rev <- sp :: parent.children_rev
   | [] ->
     (match st.d_base with
      | Some parent -> parent.children_rev <- sp :: parent.children_rev
      | None -> push_bounded completed_roots sp));
  Mutex.unlock lock

let with_span name f =
  if not !Metrics.enabled then f ()
  else begin
    let st = Domain.DLS.get state in
    let fr = { f_name = name; f_start = now (); children_rev = [] } in
    st.d_stack <- fr :: st.d_stack;
    match f () with
    | v ->
      close_frame st fr;
      v
    | exception e ->
      close_frame st fr;
      raise e
  end

(* --- context inheritance ----------------------------------------------------- *)

type ctx = { x_parent : frame option; x_scope : Metrics.scope option }

let capture () : ctx =
  if not !Metrics.enabled then { x_parent = None; x_scope = None }
  else begin
    let st = Domain.DLS.get state in
    let parent = match st.d_stack with fr :: _ -> Some fr | [] -> st.d_base in
    { x_parent = parent; x_scope = Metrics.scope_current () }
  end

let with_ctx (ctx : ctx) (f : unit -> 'a) : 'a =
  let st = Domain.DLS.get state in
  let saved_base = st.d_base and saved_stack = st.d_stack in
  let saved_scope = Metrics.scope_swap ctx.x_scope in
  st.d_base <- ctx.x_parent;
  st.d_stack <- [];
  Fun.protect
    ~finally:(fun () ->
      ignore (Metrics.scope_swap saved_scope);
      st.d_base <- saved_base;
      st.d_stack <- saved_stack)
    f

(* --- per-request traces ------------------------------------------------------ *)

let trace_seq = Atomic.make 0

let next_trace_id () =
  Printf.sprintf "t%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add trace_seq 1 + 1)

let cost_of_scope (sc : Metrics.scope) : cost =
  let g = Metrics.scope_get sc in
  { pairings = g "pairing.pairings"; miller_steps = g "pairing.miller_steps";
    bgn_mul = g "bgn.mul"; dlog_solves = g "bgn.dlog.solves";
    dlog_giant_steps = g "bgn.dlog.giant_steps";
    sse_postings = g "sse.postings_scanned" + g "oxt.postings_scanned";
    agg_rows = g "scheme.agg.rows"; agg_buckets = g "scheme.agg.joint_buckets";
    bytes_in = 0; bytes_out = 0 }

let empty_root = { name = "request"; t0 = 0.; ms = 0.; children = [] }

let with_request_full ?trace_id f =
  if not !Metrics.enabled then begin
    let v = f () in
    ( v,
      { r_id = (match trace_id with Some id -> id | None -> ""); r_start = 0.;
        r_root = empty_root; r_cost = zero_cost } )
  end
  else begin
    let id = match trace_id with Some id -> id | None -> next_trace_id () in
    let st = Domain.DLS.get state in
    let saved_base = st.d_base and saved_stack = st.d_stack in
    let sc = Metrics.scope_create () in
    let saved_scope = Metrics.scope_swap (Some sc) in
    let start = now () in
    let root = { f_name = "request"; f_start = start; children_rev = [] } in
    st.d_base <- None;
    st.d_stack <- [ root ];
    let finish () =
      let ms = (now () -. start) *. 1000. in
      st.d_stack <- saved_stack;
      st.d_base <- saved_base;
      ignore (Metrics.scope_swap saved_scope);
      let sp = { name = "request"; t0 = start; ms; children = List.rev root.children_rev } in
      let rt = { r_id = id; r_start = start; r_root = sp; r_cost = cost_of_scope sc } in
      Mutex.lock lock;
      push_bounded completed_requests rt;
      Mutex.unlock lock;
      rt
    in
    match f () with
    | v -> (v, finish ())
    | exception e ->
      ignore (finish ());
      raise e
  end

let with_request ?trace_id f =
  let v, rt = with_request_full ?trace_id f in
  (v, rt.r_root)

let set_cost (rt : rtrace) (c : cost) : unit = rt.r_cost <- c

(* --- completed rings --------------------------------------------------------- *)

let drain (q : 'a Queue.t) : 'a list =
  Mutex.lock lock;
  let l = List.rev (Queue.fold (fun acc v -> v :: acc) [] q) in
  Mutex.unlock lock;
  l

let roots () : span list = drain completed_roots
let requests () : rtrace list = drain completed_requests

let reset () =
  let st = Domain.DLS.get state in
  st.d_base <- None;
  st.d_stack <- [];
  Mutex.lock lock;
  Queue.clear completed_roots;
  Queue.clear completed_requests;
  Mutex.unlock lock

(* --- rendering --------------------------------------------------------------- *)

let phase_timings (s : span) : (string * float) list =
  List.map (fun c -> (c.name, c.ms)) s.children

let rec pp_indented fmt indent (s : span) =
  Format.fprintf fmt "%s%-*s %8.1f ms@," indent (max 1 (32 - String.length indent)) s.name s.ms;
  List.iter (pp_indented fmt (indent ^ "  ")) s.children

let pp fmt s =
  Format.fprintf fmt "@[<v>";
  pp_indented fmt "" s;
  Format.fprintf fmt "@]"

let rec to_json (s : span) : string =
  Printf.sprintf "{\"name\":\"%s\",\"ms\":%.3f,\"children\":[%s]}"
    (Metrics.json_escape s.name) s.ms
    (String.concat "," (List.map to_json s.children))

let cost_to_json (c : cost) : string =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" k v) (cost_fields c))
  ^ "}"

(* Chrome trace-event JSON (the chrome://tracing / Perfetto format):
   each span becomes one "X" complete event with microsecond timestamps;
   traces are separated by thread id so concurrent requests render as
   parallel tracks. The root event carries the trace id and cost block
   in [args]. *)
let chrome_json (ts : rtrace list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf s
  in
  List.iteri
    (fun i rt ->
      let tid = i + 1 in
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
            \"args\":{\"name\":\"%s\"}}"
           tid (Metrics.json_escape rt.r_id));
      let rec walk (sp : span) =
        let args =
          if sp == rt.r_root then
            Printf.sprintf ",\"args\":{\"trace_id\":\"%s\",\"cost\":%s}"
              (Metrics.json_escape rt.r_id) (cost_to_json rt.r_cost)
          else ""
        in
        emit
          (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":1,\"tid\":%d%s}"
             (Metrics.json_escape sp.name) (sp.t0 *. 1e6) (sp.ms *. 1000.) tid args);
        List.iter walk sp.children
      in
      walk rt.r_root)
    ts;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* Span tracing: a stack of open frames in the main domain; closing a
   frame attaches the finished span to its parent or, for roots, to the
   completed list.

   The stack is an unguarded global — correct only on the domain that
   owns it. Spans opened from a spawned domain (the aggregation chunk
   workers) used to race the main domain's pushes and pops; now they
   bypass the stack entirely and degrade to a per-name histogram
   observation, so off-domain timings are still collected without
   corrupting the tree. *)

type span = { name : string; ms : float; children : span list }

type frame = { f_name : string; start : float; mutable children_rev : span list }

let stack : frame list ref = ref []
let completed_rev : span list ref = ref []

(* The domain that loaded this module owns the span stack. *)
let main_domain : Domain.id = Domain.self ()

let now () = Unix.gettimeofday ()

(* Off-main-domain fallback: time the call into a histogram keyed by
   the span name. Registration is idempotent and these paths are
   coarse, so the registry lookup per call is acceptable. *)
let observe_off_domain name f =
  Metrics.observe_ms (Metrics.histogram ("trace." ^ name)) f

let with_span name f =
  if not !Metrics.enabled then f ()
  else if not (Domain.self () = main_domain) then observe_off_domain name f
  else begin
    let fr = { f_name = name; start = now (); children_rev = [] } in
    stack := fr :: !stack;
    let finish () =
      let ms = (now () -. fr.start) *. 1000. in
      (match !stack with
       | top :: rest when top == fr -> stack := rest
       | _ -> () (* unbalanced close (span opened in another domain): drop *));
      let sp = { name = fr.f_name; ms; children = List.rev fr.children_rev } in
      match !stack with
      | parent :: _ -> parent.children_rev <- sp :: parent.children_rev
      | [] -> completed_rev := sp :: !completed_rev
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let roots () = List.rev !completed_rev
let reset () = completed_rev := []

let rec pp_indented fmt indent (s : span) =
  Format.fprintf fmt "%s%-*s %8.1f ms@," indent (max 1 (32 - String.length indent)) s.name s.ms;
  List.iter (pp_indented fmt (indent ^ "  ")) s.children

let pp fmt s =
  Format.fprintf fmt "@[<v>";
  pp_indented fmt "" s;
  Format.fprintf fmt "@]"

let rec to_json (s : span) : string =
  Printf.sprintf "{\"name\":\"%s\",\"ms\":%.3f,\"children\":[%s]}"
    (Metrics.json_escape s.name) s.ms
    (String.concat "," (List.map to_json s.children))

(** Sampling resource profiler: span-attributed allocation sampling plus
    process-level GC gauges.

    {!start} picks the best available sampler: [Gc.Memprof] statistical
    sampling where the runtime supports it (samples attributed to the
    span open on the allocating domain), or — on runtimes where
    multicore Memprof is unavailable, like OCaml 5.0/5.1 — a span-close
    allocation-delta sampler driven through {!Trace.set_prof_hook}.
    Both feed the same two sinks: a process-wide site table
    ({!top_sites}) and the per-request allocation table on each
    {!Trace.rtrace}.

    The profiler is process-global and independent of
    {!Metrics.enabled}; per-request attribution only happens inside
    {!Trace.with_request_full}, which needs metrics on. *)

type site = {
  site_span : string;     (** span name the allocation was attributed to *)
  site_words : int;       (** words charged (scaled to estimate true allocation) *)
  site_samples : int;     (** number of samples/span closes that contributed *)
}

val default_rate : float
(** Memprof sampling rate used when [?rate] is omitted ([1e-3]). *)

val start : ?rate:float -> unit -> unit
(** Start sampling (idempotent). [rate] is the Memprof sampling rate in
    (0, 1]; the span-delta fallback ignores it (it is exact). Raises
    [Invalid_argument] on an out-of-range rate. *)

val stop : unit -> unit
(** Stop sampling (idempotent). The site table survives until {!reset}. *)

val active : unit -> bool

val mode_name : unit -> string
(** ["memprof"], ["spans"] or ["off"] — which sampler is running. *)

val reset : unit -> unit
(** Clear the process-wide site table. *)

val top_sites : ?n:int -> unit -> site list
(** The [n] (default 10) largest allocation sites by words, largest
    first. *)

val gc_samples : unit -> (string * float) list
(** [ocaml_gc_*] exposition samples straight from [Gc.quick_stat]:
    minor/promoted/major words, collection and compaction counts, heap
    and top-heap words. *)

val process_samples : unit -> (string * float) list
(** [process_*] exposition samples: CPU seconds and word size. *)

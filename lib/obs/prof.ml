(* Sampling resource profiler.

   Two samplers behind one switch, picked at [start] time:

   - [Memprof]: [Gc.Memprof] statistical allocation sampling. Each
     sampled block is attributed to the span open on the allocating
     domain ({!Trace.current_span_name}) — the callback runs
     synchronously at the allocation point, so the DLS span stack is
     exactly the attribution we want. Words are scaled by the inverse
     sampling rate to estimate true allocation.

   - [Spans]: the fallback for runtimes where multicore Memprof is
     unavailable (OCaml 5.0/5.1 raise [Failure] from
     [Gc.Memprof.start]). {!Trace.set_prof_hook} makes every span close
     measure the domain's allocated-words delta over the span and
     report the self part. Coarser (span-level, not per-block) but
     exact rather than sampled, and attribution lands on the same
     span names.

   Either way samples feed two sinks: the global site table here
   (process-wide top-N, for tests/dashboards) and the per-request
   allocation table inside {!Trace} (per-trace top-N, exported over the
   wire and into the Chrome trace).

   Overhead: the Spans sampler costs one [Gc.quick_stat] per span
   open/close; spans are per-phase (a handful per request), so the
   measured end-to-end penalty on the PR 4 workload is a few percent —
   BENCH_PR8.json enforces the ≥ 0.5× bound. *)

type site = { site_span : string; site_words : int; site_samples : int }

type mode = Off | Memprof | Spans

let mode_lock = Mutex.create ()
let current_mode = ref Off

(* span name → (words, samples), guarded by its own lock: sample
   recording must not contend with Trace's span-attachment lock. *)
let sites_lock = Mutex.create ()
let sites : (string, int ref * int ref) Hashtbl.t = Hashtbl.create 32

let record (span : string) (words : int) : unit =
  Mutex.lock sites_lock;
  (match Hashtbl.find_opt sites span with
   | Some (w, n) ->
     w := !w + words;
     n := !n + 1
   | None -> Hashtbl.add sites span (ref words, ref 1));
  Mutex.unlock sites_lock

(* Memprof callback: attribute the sample to the current span and to
   the current request's table, scaling by 1/rate so the recorded words
   estimate the true allocation. *)
let memprof_tracker (rate : float) : (unit, unit) Gc.Memprof.tracker =
  let sample (size_words : int) (n_samples : int) =
    let words = int_of_float (float_of_int (size_words * n_samples) /. rate) in
    let span = Option.value ~default:"(no span)" (Trace.current_span_name ()) in
    record span words;
    Trace.note_alloc ~span ~words
  in
  { alloc_minor =
      (fun (a : Gc.Memprof.allocation) ->
        sample a.Gc.Memprof.size a.Gc.Memprof.n_samples;
        Some ());
    alloc_major =
      (fun (a : Gc.Memprof.allocation) ->
        sample a.Gc.Memprof.size a.Gc.Memprof.n_samples;
        Some ());
    promote = (fun () -> Some ());
    dealloc_minor = (fun () -> ());
    dealloc_major = (fun () -> ()) }

let default_rate = 1e-3

let start ?(rate = default_rate) () : unit =
  Mutex.lock mode_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock mode_lock) @@ fun () ->
  if !current_mode = Off then begin
    if rate <= 0. || rate > 1. then
      invalid_arg (Printf.sprintf "Prof.start: rate %g outside (0, 1]" rate);
    match
      (try
         ignore (Gc.Memprof.start ~sampling_rate:rate (memprof_tracker rate));
         true
       with Failure _ -> false)
    with
    | true -> current_mode := Memprof
    | false ->
      Trace.set_prof_hook (Some record);
      current_mode := Spans
  end

let stop () : unit =
  Mutex.lock mode_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock mode_lock) @@ fun () ->
  (match !current_mode with
   | Off -> ()
   | Memprof -> ( try Gc.Memprof.stop () with Failure _ -> ())
   | Spans -> Trace.set_prof_hook None);
  current_mode := Off

let active () : bool = !current_mode <> Off

let mode_name () : string =
  match !current_mode with Off -> "off" | Memprof -> "memprof" | Spans -> "spans"

let reset () : unit =
  Mutex.lock sites_lock;
  Hashtbl.reset sites;
  Mutex.unlock sites_lock

let top_sites ?(n = 10) () : site list =
  Mutex.lock sites_lock;
  let l =
    Hashtbl.fold
      (fun span (w, c) acc -> { site_span = span; site_words = !w; site_samples = !c } :: acc)
      sites []
  in
  Mutex.unlock sites_lock;
  let sorted = List.sort (fun a b -> compare b.site_words a.site_words) l in
  List.filteri (fun i _ -> i < n) sorted

(* --- process-level gauges ----------------------------------------------------

   Snapshot samples for the Prometheus exposition and the v5 Stats
   report: the conventional [ocaml_gc_*] family straight out of
   [Gc.quick_stat], plus [process_*] from the OS. Names follow the
   prometheus/client exposition conventions ([_total] marks
   counters). *)

let gc_samples () : (string * float) list =
  let s = Gc.quick_stat () in
  [ ("ocaml_gc_minor_words_total", s.Gc.minor_words);
    ("ocaml_gc_promoted_words_total", s.Gc.promoted_words);
    ("ocaml_gc_major_words_total", s.Gc.major_words);
    ("ocaml_gc_minor_collections_total", float_of_int s.Gc.minor_collections);
    ("ocaml_gc_major_collections_total", float_of_int s.Gc.major_collections);
    ("ocaml_gc_compactions_total", float_of_int s.Gc.compactions);
    ("ocaml_gc_heap_words", float_of_int s.Gc.heap_words);
    ("ocaml_gc_top_heap_words", float_of_int s.Gc.top_heap_words) ]

let process_samples () : (string * float) list =
  let t = Unix.times () in
  [ ("process_cpu_seconds_total", t.Unix.tms_utime +. t.Unix.tms_stime);
    ("process_word_size_bytes", float_of_int (Sys.word_size / 8)) ]

(** Span tracing: nested wall-clock timers producing a tree per query,
    safe under a domain pool.

    [with_span "phase" f] times [f] and records the span under the
    enclosing one, so a query leaves a tree like

    {v
    aggregate                    41.2 ms
      filter                      0.4 ms
      bucket_intersection         1.9 ms
      pairing_loop               38.6 ms
    v}

    Every domain keeps its own stack of open frames in domain-local
    storage; a pool worker running part of another domain's request
    inherits that request's context through {!capture}/{!with_ctx} (the
    pool does this on every submit), so its spans attach under the
    submitting frame and each request builds one intact tree regardless
    of how many domains executed pieces of it.

    Tracing shares {!Metrics.enabled}: disabled (the default),
    [with_span] is a flag test plus a tail call.

    Spans closed outside any {!with_request} become ambient roots
    ({!roots}); spans closed inside one build that request's tree
    ({!requests}). Both completed stores are mutex-guarded bounded rings
    capped at 1024 entries, oldest dropped first.

    Resource accounting: every completed request carries a GC
    differential ({!gc_delta}), and while {!Sagma_obs.Prof} is active
    each request also accumulates a span-name → allocated-words table
    ([r_alloc]). *)

type span = {
  name : string;
  t0 : float;              (** wall-clock start, seconds since the epoch *)
  ms : float;              (** wall-clock duration *)
  children : span list;    (** in execution order *)
}

(** Per-request deltas of the §6 cost-model counters, from the
    {!Metrics.scope} installed for the request. [bytes_in]/[bytes_out]
    are transport-level and filled by the server (zero elsewhere). *)
type cost = {
  pairings : int;          (** [pairing.pairings] *)
  miller_steps : int;      (** [pairing.miller_steps] *)
  bgn_mul : int;           (** [bgn.mul] — the analytic n·B^arity·c count *)
  dlog_solves : int;       (** [bgn.dlog.solves] *)
  dlog_giant_steps : int;  (** [bgn.dlog.giant_steps] *)
  sse_postings : int;      (** [sse.postings_scanned] + [oxt.postings_scanned] *)
  agg_rows : int;          (** [scheme.agg.rows] *)
  agg_buckets : int;       (** [scheme.agg.joint_buckets] *)
  bytes_in : int;
  bytes_out : int;
}

val zero_cost : cost

val cost_fields : cost -> (string * int) list
(** Every cost field with its stable name, declaration order — for log
    events, CLI printing and JSON emitters. *)

(** Per-request [Gc.quick_stat] differential, all in words. The
    allocation counters are domain-local on OCaml 5, so a request whose
    row work ran on pool domains reports the coordinating domain's
    share. *)
type gc_delta = {
  gc_minor_words : int;
  gc_promoted_words : int;
  gc_major_words : int;
  gc_minor_collections : int;
  gc_major_collections : int;
  gc_heap_words : int;    (** major heap size when the request finished *)
  gc_heap_growth : int;   (** [heap_words] delta over the request *)
}

val zero_gc : gc_delta

val gc_fields : gc_delta -> (string * int) list
(** Every GC field with its stable name, declaration order — mirrors
    {!cost_fields}. *)

(** A completed request trace: the root span (named ["request"]), its
    start time, the trace id (client-supplied or generated), the cost
    block, the GC differential, and the profiler's allocation table
    (empty unless {!Sagma_obs.Prof} was active; largest site first).
    [r_cost] is mutable so the server can fill the byte counts after
    encoding the response; the {!requests} ring holds the same record,
    so the update is visible in later exports. *)
type rtrace = {
  r_id : string;
  r_start : float;
  r_root : span;
  mutable r_cost : cost;
  mutable r_gc : gc_delta;
  mutable r_alloc : (string * int) list;
}

val with_span : string -> (unit -> 'a) -> 'a
(** Time [f] as a child of the innermost open span on this domain (or of
    the inherited parent frame, or as a new ambient root). Exceptions
    propagate; the span is still recorded. *)

val with_request : ?trace_id:string -> (unit -> 'a) -> 'a * span
(** Run [f] as one traced request: a root span named ["request"] is
    opened, spans [f] opens (on this domain or on pool workers that
    inherited the context) become its descendants, and a fresh
    {!Metrics.scope} collects the request's counter deltas. Returns the
    completed root. When metrics are disabled this is just [f ()] paired
    with an empty span. *)

val with_request_full : ?trace_id:string -> (unit -> 'a) -> 'a * rtrace
(** Like {!with_request} but returns the full record (id, start, cost,
    GC differential, allocation table) that was pushed onto the
    {!requests} ring. *)

val set_cost : rtrace -> cost -> unit
(** Replace the cost block (the server uses this to fill
    [bytes_in]/[bytes_out] after encoding the response). *)

val current_request_id : unit -> string option
(** The id of the request currently being traced on this domain — set
    by {!with_request_full}, inherited through {!capture}/{!with_ctx},
    [None] outside a traced request. A query router propagates this
    across the coordinator → shard hop (as the v4 trace context of its
    shard calls), so both nodes record the same trace id. *)

val attach_span : span -> unit
(** Graft an already-completed span — e.g. one rebuilt from a shard's
    EXPLAIN timings — as a child of the innermost open span, so a
    distributed request renders as one tree. No-op outside any open
    span or with metrics disabled. *)

(** {1 Profiler integration}

    Used by {!Sagma_obs.Prof}; not meant for direct application use. *)

val set_prof_hook : (string -> int -> unit) option -> unit
(** Install the span-close allocation sampler: with a hook set, every
    span close measures the domain's allocated-words delta over the
    span, charges the self part to the closing span's name (both into
    the current request's table and through the hook), and rolls the
    total up into the enclosing frame. [None] (the default) keeps span
    close free of any [Gc] call. *)

val current_span_name : unit -> string option
(** The innermost open span on this domain (falling back to the
    inherited parent frame) — what a [Gc.Memprof] callback should
    attribute its sample to. *)

val note_alloc : span:string -> words:int -> unit
(** Charge [words] to [span] in the current request's allocation table;
    a no-op outside a profiled request. Safe from any domain that
    inherited the request context. *)

(** {1 Context inheritance} *)

type ctx
(** A capture of the calling domain's tracing position: the innermost
    open frame, the installed {!Metrics.scope}, and the request's
    allocation table. *)

val capture : unit -> ctx
(** Capture on the submitting domain; pass to {!with_ctx} on a worker. *)

val with_ctx : ctx -> (unit -> 'a) -> 'a
(** Run [f] with the captured context installed: spans attach under the
    captured frame, counter deltas land in the captured scope. The
    worker's previous state is restored afterwards. The captured frame
    must still be open while [f] runs — guaranteed on the pool path
    because the submitter awaits the task's future inside that frame. *)

(** {1 Completed traces} *)

val roots : unit -> span list
(** Completed ambient root spans since the last {!reset}, oldest first
    (bounded: the newest 1024). *)

val requests : unit -> rtrace list
(** Completed request traces since the last {!reset}, oldest first
    (bounded: the newest 1024). *)

val reset : unit -> unit
(** Drop completed spans and request traces, and clear the calling
    domain's open-frame state. *)

(** {1 Rendering} *)

val phase_timings : span -> (string * float) list
(** The direct children as [(name, ms)] pairs — the per-phase timing
    summary a response's EXPLAIN block carries. *)

val pp : Format.formatter -> span -> unit
(** The indented tree rendering shown above. *)

val to_json : span -> string
(** [{"name": ..., "ms": ..., "children": [...]}]. *)

val cost_to_json : cost -> string
(** A flat JSON object keyed by {!cost_fields} names. *)

val gc_to_json : gc_delta -> string
(** A flat JSON object keyed by {!gc_fields} names. *)

val chrome_json : rtrace list -> string
(** Chrome trace-event JSON ([{"traceEvents": [...]}]): one "X"
    complete event per span with microsecond timestamps, one thread per
    trace, the trace id, cost block and GC/allocation summary in the
    root event's [args] — loadable in chrome://tracing or Perfetto. *)

(** Span tracing: nested wall-clock timers producing a tree per query.

    [with_span "phase" f] times [f] and records the span under the
    enclosing one, so a query leaves a tree like

    {v
    aggregate                    41.2 ms
      filter                      0.4 ms
      bucket_intersection         1.9 ms
      pairing_loop               38.6 ms
    v}

    Tracing shares {!Metrics.enabled}: disabled (the default),
    [with_span] is a flag test plus a tail call. The span stack is a
    single global owned by the domain that loaded this module; a
    [with_span] reached from any other domain never touches it and
    instead records the duration into the [trace.<name>] histogram, so
    off-domain callers stay measured without corrupting the tree. *)

type span = {
  name : string;
  ms : float;              (** wall-clock duration *)
  children : span list;    (** in execution order *)
}

val with_span : string -> (unit -> 'a) -> 'a
(** Time [f] as a child of the innermost open span (or as a new root).
    Exceptions propagate; the span is still recorded. *)

val roots : unit -> span list
(** Completed top-level spans since the last {!reset}, oldest first. *)

val reset : unit -> unit
(** Drop completed spans (open spans are unaffected). *)

val pp : Format.formatter -> span -> unit
(** The indented tree rendering shown above. *)

val to_json : span -> string
(** [{"name": ..., "ms": ..., "children": [...]}]. *)

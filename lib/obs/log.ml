(* Structured logging: leveled JSON-lines events.

   Disabled until a sink is attached: [event] reduces to one load and a
   comparison, so instrumented request paths cost nothing in the default
   configuration. Each emitted line is a single flat JSON object —
   {"ts":...,"level":"info","event":"request","req":17,...} — so files
   are greppable and jq-able without a parser for a bespoke format.

   A mutex serializes emission (the transport can log from the accept
   loop while a handler logs mid-request in tests); field values are
   escaped through Metrics.json_escape. *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type field_value = S of string | I of int | F of float | B of bool

type field = string * field_value

let str k v = (k, S v)
let int k v = (k, I v)
let float k v = (k, F v)
let bool k v = (k, B v)

(* --- sink ----------------------------------------------------------------- *)

let min_level = ref Info
let set_level l = min_level := l

type sink = { oc : out_channel; close_on_detach : bool }

let sink : sink option ref = ref None
let lock = Mutex.create ()

let detach () =
  Mutex.lock lock;
  (match !sink with
   | Some s ->
     (try flush s.oc with Sys_error _ -> ());
     if s.close_on_detach then (try close_out s.oc with Sys_error _ -> ())
   | None -> ());
  sink := None;
  Mutex.unlock lock

let to_channel oc =
  detach ();
  Mutex.lock lock;
  sink := Some { oc; close_on_detach = false };
  Mutex.unlock lock

let to_file path =
  detach ();
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Mutex.lock lock;
  sink := Some { oc; close_on_detach = true };
  Mutex.unlock lock

let enabled (l : level) : bool = !sink <> None && severity l >= severity !min_level

(* --- emission --------------------------------------------------------------- *)

(* Request ids tie log lines (and audit traces) of one request together;
   atomic so multi-domain callers never collide. *)
let request_ids = Atomic.make 0
let next_request_id () = Atomic.fetch_and_add request_ids 1 + 1

let add_field buf (k, v) =
  Buffer.add_string buf (Printf.sprintf ",\"%s\":" (Metrics.json_escape k));
  match v with
  | S s -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (Metrics.json_escape s))
  | I i -> Buffer.add_string buf (string_of_int i)
  | F f ->
    Buffer.add_string buf
      (if Float.is_finite f then Printf.sprintf "%.6g" f else Printf.sprintf "\"%f\"" f)
  | B b -> Buffer.add_string buf (string_of_bool b)

let event ?(fields : field list = []) (l : level) (name : string) : unit =
  if enabled l then begin
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf "{\"ts\":%.6f,\"level\":\"%s\",\"event\":\"%s\""
         (Unix.gettimeofday ()) (level_to_string l) (Metrics.json_escape name));
    List.iter (add_field buf) fields;
    Buffer.add_char buf '}';
    Mutex.lock lock;
    (match !sink with
     | Some s ->
       (try
          output_string s.oc (Buffer.contents buf);
          output_char s.oc '\n';
          flush s.oc
        with Sys_error _ -> ())
     | None -> ());
    Mutex.unlock lock
  end

let debug ?fields name = event ?fields Debug name
let info ?fields name = event ?fields Info name
let warn ?fields name = event ?fields Warn name
let error ?fields name = event ?fields Error name

(** Leakage auditor: access-pattern traces checked against a declared
    leakage prediction.

    The honest-but-curious server of the paper is allowed to learn
    exactly the leakage function L of §4.2 — the queried attribute
    identifiers plus the SSE trace (search pattern and matching row
    ids). When auditing is on, the instrumented server records every
    index access it performs as a {!probe}; {!check} then replays the
    trace against a prediction derived from the declared leakage and
    fails loudly if the server touched anything the leakage does not
    predict.

    This module is generic (it lives below the sagma library): a probe
    is a [(kind, tag, matches)] triple with opaque strings. The
    SAGMA-aware glue that builds the prediction from
    [Sagma.Leakage.of_query] lives in [Sagma.Leakage].

    Recording is off by default; when {!enabled} is false every hook is
    a single load-and-branch. *)

type probe = {
  p_kind : string;     (** access class, e.g. ["sse.bucket"] or ["oxt.stag"] *)
  p_tag : string;      (** deterministic token identifier (search pattern) *)
  p_matches : int list;(** row ids whose postings matched (access pattern) *)
}

type trace = {
  t_id : int;           (** request id, from {!Log.next_request_id} *)
  t_probes : probe list;(** in execution order *)
  t_rows_paired : int;  (** ciphertext rows entering the pairing loop *)
}

type verdict = Pass | Fail of string list

val enabled : bool ref
(** The audit switch, [false] by default. Independent of
    [Metrics.enabled] so leakage auditing can run without timing
    collection (and vice versa). *)

val set_enabled : bool -> unit

(** {1 Recording (server-side hooks)} *)

val begin_request : int -> unit
(** Open a trace for request [id]; any previous open trace is dropped. *)

val probe : kind:string -> tag:string -> matches:int list -> unit
(** Record one index access against the open trace (no-op without one). *)

val rows_paired : int -> unit
(** Add to the open trace's paired-row count. *)

val end_request : unit -> trace option
(** Close and return the open trace, retaining it for {!traces} (a
    bounded buffer keeps the most recent 1024). [None] when auditing is
    off or no trace is open. *)

(** {1 Inspection} *)

val traces : unit -> trace list
(** Completed traces, oldest first. *)

val reset : unit -> unit
(** Drop all traces (open and completed) and zero the check counters. *)

(** {1 Checking} *)

val check :
  ?max_rows_paired:int ->
  predicted:(string * string * int list) list ->
  trace ->
  verdict
(** [check ~predicted t] verifies that every probe in [t] appears in
    [predicted] — same [(kind, tag)] with exactly the predicted row ids
    (order-insensitive; repeats collapse, since repetition is the
    declared search pattern) — and, when [max_rows_paired] is given,
    that no more rows entered the pairing loop than the prediction
    allows. Each discrepancy contributes one human-readable line to
    [Fail]. *)

val pp_verdict : Format.formatter -> verdict -> unit

type summary = {
  s_requests : int;       (** completed traces retained *)
  s_probes : int;         (** total probes across retained traces *)
  s_checks_run : int;
  s_check_failures : int;
}

val summary : unit -> summary
(** Cheap aggregate for the [Stats] RPC and CLI display. *)

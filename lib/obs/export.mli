(** Prometheus text-format exposition of {!Metrics} snapshots.

    One call renders the whole registry: counters as
    [sagma_<name>_total], histograms as the conventional
    [_bucket{le="..."}]/[_sum]/[_count] family over the fixed
    {!Metrics.bucket_bounds} grid, and the snapshot's p50/p95/p99
    estimates as companion [_p50]/[_p95]/[_p99] gauges. *)

val metric_name : string -> string
(** Registry name → namespaced Prometheus identifier
    (["proto.request_ms"] → ["sagma_proto_request_ms"]). *)

val prometheus : ?uptime_s:float -> ?raw:(string * float) list -> Metrics.snapshot -> string
(** The full exposition page, one sample per line, newline-terminated.
    [uptime_s] adds a [sagma_uptime_seconds] gauge. [raw] samples are
    emitted under their given names unprefixed — the process-level
    [ocaml_gc_*]/[process_*] families from {!Prof.gc_samples} and
    {!Prof.process_samples}; names ending in [_total] are typed
    counter, everything else gauge. *)

(** Prometheus text-format exposition of {!Metrics} snapshots.

    One call renders the whole registry: counters as
    [sagma_<name>_total], histograms as the conventional
    [_bucket{le="..."}]/[_sum]/[_count] family over the fixed
    {!Metrics.bucket_bounds} grid, and the snapshot's p50/p95/p99
    estimates as companion [_p50]/[_p95]/[_p99] gauges.

    Snapshot entries may carry a label block in their name — built with
    {!labeled}, e.g. ["proto.requests{shard=\"1\"}"] — which renders as
    a labeled Prometheus series
    ([sagma_proto_requests_total{shard="1"}]). A coordinator uses this
    to expose per-shard series next to the fleet aggregates. *)

val metric_name : string -> string
(** Registry name → namespaced Prometheus identifier
    (["proto.request_ms"] → ["sagma_proto_request_ms"]). A label block
    is dropped: [metric_name "a.b{shard=\"1\"}" = "sagma_a_b"]. *)

val escape_label_value : string -> string
(** Prometheus label-value escaping: backslash, double-quote and
    newline. Everything else — including hostile endpoint strings —
    passes through verbatim. *)

val labeled : string -> (string * string) list -> string
(** [labeled name [("shard", "1")]] is ["name{shard=\"1\"}"]: the
    snapshot-entry spelling of a labeled series. Label names are
    sanitized, label values escaped with {!escape_label_value}; an empty
    label list returns [name] unchanged. *)

val prometheus : ?uptime_s:float -> ?raw:(string * float) list -> Metrics.snapshot -> string
(** The full exposition page, one sample per line, newline-terminated.
    [uptime_s] adds a [sagma_uptime_seconds] gauge. [raw] samples are
    emitted under their given names unprefixed — the process-level
    [ocaml_gc_*]/[process_*] families from {!Prof.gc_samples} and
    {!Prof.process_samples}; names ending in [_total] are typed
    counter, everything else gauge. HELP/TYPE headers are emitted once
    per family, so labeled and unlabeled series of one family share
    them. *)

(** Prometheus text-format exposition of {!Metrics} snapshots.

    One call renders the whole registry: counters as
    [sagma_<name>_total], histograms as the conventional
    [_bucket{le="..."}]/[_sum]/[_count] family over the fixed
    {!Metrics.bucket_bounds} grid, and the snapshot's p50/p95/p99
    estimates as companion [_p50]/[_p95]/[_p99] gauges. *)

val metric_name : string -> string
(** Registry name → namespaced Prometheus identifier
    (["proto.request_ms"] → ["sagma_proto_request_ms"]). *)

val prometheus : Metrics.snapshot -> string
(** The full exposition page, one sample per line, newline-terminated. *)

(* SLO watchdog: a small declarative rule engine over metrics snapshots.

   A rule names a signal source (a counter ratio or rate over the poll
   interval, a gauge level, a histogram p99, or the fleet's down-shard
   count), a comparison and a threshold. {!poll} evaluates every rule
   against the latest snapshot, tracks firing state per rule, and emits
   a structured "alert" log event on each firing→resolved transition —
   so an operator tailing the JSON log, or a CI gate running
   `sagma_cli health`, sees SLO breaches as first-class events.

   Everything here reads counter/timing data the §4.2 leakage function
   already licenses; the watchdog widens no leakage envelope. *)

type source =
  | Ratio of string * string  (* delta(a) / delta(b) over the poll interval *)
  | Rate of string            (* delta(counter) per second *)
  | Gauge of string           (* current level *)
  | P99 of string             (* histogram p99 estimate, ms *)
  | Shards_down               (* count of unreachable shards (coordinator) *)

type cmp = Gt | Lt

type rule = { r_name : string; r_source : source; r_cmp : cmp; r_threshold : float }

type alert = {
  a_rule : string;
  a_since : float;      (* epoch seconds the rule started firing *)
  a_value : float;      (* observation that last kept it firing *)
  a_threshold : float;
  a_message : string;
}

let source_to_string = function
  | Ratio (a, b) -> Printf.sprintf "ratio:%s/%s" a b
  | Rate c -> Printf.sprintf "rate:%s" c
  | Gauge g -> Printf.sprintf "gauge:%s" g
  | P99 h -> Printf.sprintf "p99:%s" h
  | Shards_down -> "shards_down"

let cmp_to_string = function Gt -> ">" | Lt -> "<"

let rule_to_string (r : rule) : string =
  Printf.sprintf "%s %s %s %g" r.r_name (source_to_string r.r_source) (cmp_to_string r.r_cmp)
    r.r_threshold

(* The default SLO set: error rate over the poll window, tail latency,
   pool backlog, and fleet integrity. Thresholds are deliberately loose
   — operators tighten them with --alert-rules. *)
let default_rules : rule list =
  [ { r_name = "error-rate"; r_source = Ratio ("proto.requests_failed", "proto.requests");
      r_cmp = Gt; r_threshold = 0.5 };
    { r_name = "p99-latency"; r_source = P99 "proto.request_ms"; r_cmp = Gt;
      r_threshold = 30_000. };
    { r_name = "queue-depth"; r_source = Gauge "pool.queue_depth"; r_cmp = Gt;
      r_threshold = 128. };
    { r_name = "shard-down"; r_source = Shards_down; r_cmp = Gt; r_threshold = 0. } ]

(* Rule files: one rule per line, `name source cmp threshold`
   whitespace-separated; blank lines and `#` comments skipped.

     slow-p99     p99:proto.request_ms        > 500
     err-burst    ratio:proto.requests_failed/proto.requests > 0.05
     backlog      gauge:pool.queue_depth      > 32
     ingest-idle  rate:proto.requests         < 1
     fleet        shards_down                 > 0
*)
let parse_source (s : string) : (source, string) result =
  let kind, arg =
    match String.index_opt s ':' with
    | None -> (s, "")
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  match kind with
  | "shards_down" -> Ok Shards_down
  | "rate" when arg <> "" -> Ok (Rate arg)
  | "gauge" when arg <> "" -> Ok (Gauge arg)
  | "p99" when arg <> "" -> Ok (P99 arg)
  | "ratio" ->
    (match String.index_opt arg '/' with
     | Some i when i > 0 && i < String.length arg - 1 ->
       Ok (Ratio (String.sub arg 0 i, String.sub arg (i + 1) (String.length arg - i - 1)))
     | _ -> Error (Printf.sprintf "ratio source needs num/den, got %S" arg))
  | _ -> Error (Printf.sprintf "unknown source %S (want ratio:a/b, rate:c, gauge:g, p99:h, shards_down)" s)

let parse_rules (text : string) : (rule list, string) result =
  let lines = String.split_on_char '\n' text in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go (n + 1) acc rest
      else begin
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ name; src; cmp; thr ] ->
          let cmp_r =
            match cmp with
            | ">" -> Ok Gt
            | "<" -> Ok Lt
            | c -> Error (Printf.sprintf "unknown comparison %S (want > or <)" c)
          in
          (match parse_source src, cmp_r, float_of_string_opt thr with
           | Ok r_source, Ok r_cmp, Some r_threshold ->
             go (n + 1) ({ r_name = name; r_source; r_cmp; r_threshold } :: acc) rest
           | Error e, _, _ | _, Error e, _ -> Error (Printf.sprintf "line %d: %s" n e)
           | _, _, None -> Error (Printf.sprintf "line %d: bad threshold %S" n thr))
        | _ ->
          Error
            (Printf.sprintf "line %d: want `name source cmp threshold`, got %S" n line)
      end
  in
  go 1 [] lines

type t = {
  rules : rule list;
  lock : Mutex.t;
  mutable prev : (float * Metrics.snapshot) option;  (* last poll: time + snapshot *)
  firing : (string, alert) Hashtbl.t;
}

let create ?(rules = default_rules) () : t =
  { rules; lock = Mutex.create (); prev = None; firing = Hashtbl.create 8 }

let counter_value (s : Metrics.snapshot) (name : string) : int =
  match List.assoc_opt name s.Metrics.counters with Some v -> v | None -> 0

(* [None] means "not evaluable this poll" (rates need a previous
   snapshot; a ratio with no denominator traffic stays silent), which
   never changes the rule's firing state. *)
let evaluate (r : rule) ~(prev : (float * Metrics.snapshot) option) ~(now : float)
    ~(snapshot : Metrics.snapshot) ~(shards_down : int) : float option =
  match r.r_source with
  | Gauge g -> Option.map float_of_int (List.assoc_opt g snapshot.Metrics.gauges)
  | P99 h ->
    Option.map (fun st -> st.Metrics.h_p99) (List.assoc_opt h snapshot.Metrics.histograms)
  | Shards_down -> Some (float_of_int shards_down)
  | Rate c ->
    (match prev with
     | Some (t0, s0) when now > t0 ->
       Some (float_of_int (counter_value snapshot c - counter_value s0 c) /. (now -. t0))
     | _ -> None)
  | Ratio (num, den) ->
    (match prev with
     | Some (_, s0) ->
       let dden = counter_value snapshot den - counter_value s0 den in
       if dden <= 0 then None
       else Some (float_of_int (counter_value snapshot num - counter_value s0 num)
                  /. float_of_int dden)
     | None -> None)

let breaches (r : rule) (v : float) : bool =
  match r.r_cmp with Gt -> v > r.r_threshold | Lt -> v < r.r_threshold

let alert_fields ~(now : float) (a : alert) (state : string) : Log.field list =
  [ Log.str "rule" a.a_rule; Log.str "state" state; Log.float "value" a.a_value;
    Log.float "threshold" a.a_threshold;
    (* The age, not the epoch timestamp: the event's own ts already
       anchors it in time, and %g would garble an epoch float. *)
    Log.float "firing_s" (max 0. (now -. a.a_since));
    Log.str "message" a.a_message ]

(* One evaluation pass. Transitions log as `alert` events: firing at
   Warn, resolved at Info. Steady states (still firing / still quiet)
   stay silent, so the log carries edges, not levels. *)
let poll ?now (t : t) ~(snapshot : Metrics.snapshot) ~(shards_down : int) : unit =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  Mutex.lock t.lock;
  let prev = t.prev in
  List.iter
    (fun r ->
      match evaluate r ~prev ~now ~snapshot ~shards_down with
      | None -> ()
      | Some v ->
        let was = Hashtbl.find_opt t.firing r.r_name in
        if breaches r v then begin
          let a =
            match was with
            | Some a -> { a with a_value = v }
            | None ->
              { a_rule = r.r_name; a_since = now; a_value = v; a_threshold = r.r_threshold;
                a_message =
                  Printf.sprintf "%s: %s = %g %s %g" r.r_name (source_to_string r.r_source) v
                    (cmp_to_string r.r_cmp) r.r_threshold }
          in
          Hashtbl.replace t.firing r.r_name a;
          if was = None then Log.warn "alert" ~fields:(alert_fields ~now a "firing")
        end
        else
          match was with
          | Some a ->
            Hashtbl.remove t.firing r.r_name;
            Log.info "alert" ~fields:(alert_fields ~now { a with a_value = v } "resolved")
          | None -> ())
    t.rules;
  t.prev <- Some (now, snapshot);
  Mutex.unlock t.lock

let active (t : t) : alert list =
  Mutex.lock t.lock;
  let out = Hashtbl.fold (fun _ a acc -> a :: acc) t.firing [] in
  Mutex.unlock t.lock;
  List.sort (fun a b -> compare a.a_rule b.a_rule) out

let firing_count (t : t) : int =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.firing in
  Mutex.unlock t.lock;
  n

let rules (t : t) : rule list = t.rules

(** SLO watchdog: declarative alert rules over {!Metrics} snapshots.

    A {!rule} compares a signal — a counter ratio or per-second rate
    over the poll interval, a gauge level, a histogram p99, or the
    fleet's down-shard count — against a threshold. {!poll} evaluates
    every rule, tracks per-rule firing state, and emits a structured
    [alert] log event (via {!Log}) on each firing→resolved transition.
    Active alerts are served to peers in the protocol-v7
    [Health_report], and `sagma_cli health` exits non-zero while any
    fires, so fleet health is a CI-gateable check.

    The watchdog reads only counter/timing data the §4.2 leakage
    function already licenses. *)

type source =
  | Ratio of string * string
      (** [Ratio (num, den)]: delta(num)/delta(den) over the poll
          interval — e.g. the error rate
          [ratio:proto.requests_failed/proto.requests]. Not evaluated
          when the denominator saw no traffic. *)
  | Rate of string  (** delta(counter) per second over the poll interval *)
  | Gauge of string  (** current gauge level *)
  | P99 of string  (** a histogram's p99 estimate, in ms *)
  | Shards_down  (** unreachable-shard count, fed by the caller *)

type cmp = Gt | Lt

type rule = { r_name : string; r_source : source; r_cmp : cmp; r_threshold : float }

type alert = {
  a_rule : string;
  a_since : float;  (** epoch seconds the rule started firing *)
  a_value : float;  (** observation that last kept it firing *)
  a_threshold : float;
  a_message : string;  (** human-readable, e.g. ["shard-down: shards_down = 1 > 0"] *)
}

val default_rules : rule list
(** [error-rate] (ratio > 0.5), [p99-latency] (p99 proto.request_ms >
    30000 ms), [queue-depth] (pool.queue_depth > 128), [shard-down]
    (shards_down > 0). *)

val parse_rules : string -> (rule list, string) result
(** Parse a rule file: one [name source cmp threshold] per line
    (whitespace-separated), blank lines and [#] comments skipped.
    Sources: [ratio:a/b], [rate:c], [gauge:g], [p99:h], [shards_down];
    comparisons [>] and [<]. Errors name the offending line. *)

val rule_to_string : rule -> string
(** The rule in file syntax — [parse_rules] round-trips it. *)

type t

val create : ?rules:rule list -> unit -> t
(** A watchdog with no firing alerts and no poll history;
    [rules] defaults to {!default_rules}. *)

val poll : ?now:float -> t -> snapshot:Metrics.snapshot -> shards_down:int -> unit
(** One evaluation pass against the current snapshot. Rules needing a
    delta (ratio, rate) stay silent on the first poll. Transitions emit
    [alert] log events: firing at [Warn], resolved at [Info]; steady
    states are silent. [?now] (epoch seconds) defaults to the wall
    clock — tests pin it. Thread-safe. *)

val active : t -> alert list
(** Currently-firing alerts, sorted by rule name. *)

val firing_count : t -> int

val rules : t -> rule list

(* Metrics registry: named monotonic counters and value histograms.

   Counters are Atomic cells so the multi-domain aggregation path can
   bump them without tearing; histograms guard their running stats with a
   mutex and are only used on coarse paths. The [enabled] flag is read on
   every recording call, so instrumentation left in hot code costs one
   load-and-branch while disabled (the default). *)

type counter = { c_name : string; c_slot : int; cell : int Atomic.t }

(* Fixed exponential bucket grid shared by every histogram: upper bounds
   0.001 · 2^i. Observations are milliseconds or small cardinalities, so
   the grid spans sub-microsecond to ~10⁶ with one array index; the last
   slot of [buckets] is the +∞ overflow bucket. A fixed grid keeps
   [observe] allocation-free and makes snapshots directly exposable in
   Prometheus text format. *)
let bucket_bounds : float array = Array.init 31 (fun i -> 0.001 *. (2. ** float_of_int i))
let num_buckets = Array.length bucket_bounds + 1

(* Index of the first bucket whose upper bound holds [v] (binary search:
   observe sits on instrumented paths). *)
let bucket_index (v : float) : int =
  if v > bucket_bounds.(Array.length bucket_bounds - 1) then Array.length bucket_bounds
  else begin
    let lo = ref 0 and hi = ref (Array.length bucket_bounds - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= bucket_bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

type histogram = {
  h_name : string;
  lock : Mutex.t;
  mutable obs_count : int;
  mutable obs_sum : float;
  mutable obs_min : float;
  mutable obs_max : float;
  buckets : int array;  (* per-bucket (non-cumulative) counts *)
}

(* Gauges are level measurements (in-flight connections, queue depth):
   unlike counters they go down as well as up, and a zero reading can be
   meaningful, so [snapshot] keeps any gauge that has ever been touched. *)
type gauge = { g_name : string; g_cell : int Atomic.t; g_touched : bool Atomic.t }

let enabled = ref false
let set_enabled b = enabled := b

(* --- per-request cost scopes ---------------------------------------------- *)

(* The §6 cost model is about a single query, but the registry counters
   are process-global: under a domain pool several requests bump the same
   cells at once, so global deltas no longer attribute work to a request.
   A scope is a small fixed vector of the cost-model counters; while one
   is installed (domain-locally, see {!scope_swap}) every [incr]/[add] on
   a tracked counter also lands in it. The vector is atomic because one
   request's aggregation chunks bump counters from several pool domains
   that all inherit the same scope. *)

let scope_names : string array =
  [| "pairing.pairings"; "pairing.miller_steps"; "bgn.mul"; "bgn.dlog.solves";
     "bgn.dlog.giant_steps"; "sse.postings_scanned"; "oxt.postings_scanned";
     "scheme.agg.rows"; "scheme.agg.joint_buckets";
     (* PR 6 multi-pairing engine: request-scoped so EXPLAIN can show the
        invm collapse and the precomp/product batching next to the
        unchanged [pairings] count. *)
     "pairing.prod_calls"; "pairing.precomp_hits"; "bigint.invm"; "bigint.invm_batch" |]

type scope = int Atomic.t array

let scope_slot (name : string) : int =
  let rec go i =
    if i >= Array.length scope_names then -1
    else if String.equal scope_names.(i) name then i
    else go (i + 1)
  in
  go 0

let active_scope : scope option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let scope_create () : scope = Array.init (Array.length scope_names) (fun _ -> Atomic.make 0)

let scope_swap (s : scope option) : scope option =
  let r = Domain.DLS.get active_scope in
  let prev = !r in
  r := s;
  prev

let scope_current () : scope option = !(Domain.DLS.get active_scope)

let scope_get (s : scope) (name : string) : int =
  match scope_slot name with -1 -> 0 | i -> Atomic.get s.(i)

let scope_counters (s : scope) : (string * int) list =
  Array.to_list (Array.mapi (fun i v -> (scope_names.(i), Atomic.get v)) s)

let scope_bump (slot : int) (n : int) : unit =
  if slot >= 0 then
    match !(Domain.DLS.get active_scope) with
    | Some s -> ignore (Atomic.fetch_and_add s.(slot) n)
    | None -> ()

(* Registration: idempotent by name so instrumented libraries can
   register at init time and tests can look the same cells up later. *)
let registry_lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let counter name =
  Mutex.lock registry_lock;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
      let c = { c_name = name; c_slot = scope_slot name; cell = Atomic.make 0 } in
      Hashtbl.add counters name c;
      c
  in
  Mutex.unlock registry_lock;
  c

let histogram name =
  Mutex.lock registry_lock;
  let h =
    match Hashtbl.find_opt histograms name with
    | Some h -> h
    | None ->
      let h =
        { h_name = name; lock = Mutex.create (); obs_count = 0; obs_sum = 0.;
          obs_min = infinity; obs_max = neg_infinity; buckets = Array.make num_buckets 0 }
      in
      Hashtbl.add histograms name h;
      h
  in
  Mutex.unlock registry_lock;
  h

let gauge name =
  Mutex.lock registry_lock;
  let g =
    match Hashtbl.find_opt gauges name with
    | Some g -> g
    | None ->
      let g = { g_name = name; g_cell = Atomic.make 0; g_touched = Atomic.make false } in
      Hashtbl.add gauges name g;
      g
  in
  Mutex.unlock registry_lock;
  g

let incr c =
  if !enabled then begin
    Atomic.incr c.cell;
    scope_bump c.c_slot 1
  end

let add c n =
  if !enabled then begin
    ignore (Atomic.fetch_and_add c.cell n);
    scope_bump c.c_slot n
  end

let gauge_add g n =
  if !enabled then begin
    Atomic.set g.g_touched true;
    ignore (Atomic.fetch_and_add g.g_cell n)
  end

let gauge_incr g = gauge_add g 1
let gauge_decr g = gauge_add g (-1)

let gauge_set g v =
  if !enabled then begin
    Atomic.set g.g_touched true;
    Atomic.set g.g_cell v
  end

let gauge_value g = Atomic.get g.g_cell

let observe h v =
  if !enabled then begin
    Mutex.lock h.lock;
    h.obs_count <- h.obs_count + 1;
    h.obs_sum <- h.obs_sum +. v;
    if v < h.obs_min then h.obs_min <- v;
    if v > h.obs_max then h.obs_max <- v;
    let bi = bucket_index v in
    h.buckets.(bi) <- h.buckets.(bi) + 1;
    Mutex.unlock h.lock
  end

let observe_ms h f =
  if not !enabled then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> observe h ((Unix.gettimeofday () -. t0) *. 1000.))
      f
  end

let value c = Atomic.get c.cell

(* --- snapshots ----------------------------------------------------------- *)

type hist_stats = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) array;
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
}

(* Quantile estimate from the bucket counts, Prometheus
   histogram_quantile style: find the bucket holding the q·count-th
   observation and interpolate linearly inside it. The overflow bucket
   has no upper bound, so estimates landing there (and interpolations
   past the observed extremes) are clamped to [min, max]. *)
let quantile_of_buckets ~(count : int) ~(min_v : float) ~(max_v : float) (counts : int array)
    (q : float) : float =
  let rank = q *. float_of_int count in
  let rec go i cum =
    if i >= Array.length counts then max_v
    else begin
      let cum' = cum + counts.(i) in
      if float_of_int cum' >= rank && counts.(i) > 0 then begin
        if i >= Array.length bucket_bounds then max_v
        else begin
          let lower = if i = 0 then 0. else bucket_bounds.(i - 1) in
          let upper = bucket_bounds.(i) in
          let frac = (rank -. float_of_int cum) /. float_of_int counts.(i) in
          Float.min max_v (Float.max min_v (lower +. ((upper -. lower) *. frac)))
        end
      end
      else go (i + 1) cum'
    end
  in
  go 0 0

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_stats) list;
}

let snapshot () : snapshot =
  Mutex.lock registry_lock;
  let cs =
    Hashtbl.fold
      (fun name c acc ->
        let v = Atomic.get c.cell in
        if v = 0 then acc else (name, v) :: acc)
      counters []
    |> List.sort compare
  in
  let gs =
    Hashtbl.fold
      (fun name g acc ->
        if Atomic.get g.g_touched then (name, Atomic.get g.g_cell) :: acc else acc)
      gauges []
    |> List.sort compare
  in
  let hs =
    Hashtbl.fold
      (fun name h acc ->
        Mutex.lock h.lock;
        let stats =
          if h.obs_count = 0 then None
          else begin
            (* Cumulative counts per upper bound, +∞ last — the shape
               Prometheus exposition wants. *)
            let cum = ref 0 in
            let cumulative =
              Array.mapi
                (fun i n ->
                  cum := !cum + n;
                  ((if i < Array.length bucket_bounds then bucket_bounds.(i) else infinity),
                   !cum))
                h.buckets
            in
            let quantile =
              quantile_of_buckets ~count:h.obs_count ~min_v:h.obs_min ~max_v:h.obs_max
                h.buckets
            in
            Some
              { h_count = h.obs_count; h_sum = h.obs_sum; h_min = h.obs_min;
                h_max = h.obs_max; h_buckets = cumulative; h_p50 = quantile 0.50;
                h_p95 = quantile 0.95; h_p99 = quantile 0.99 }
          end
        in
        Mutex.unlock h.lock;
        match stats with None -> acc | Some s -> (name, s) :: acc)
      histograms []
    |> List.sort compare
  in
  Mutex.unlock registry_lock;
  { counters = cs; gauges = gs; histograms = hs }

(* --- fleet federation --------------------------------------------------------

   A coordinator merges its shards' snapshots into one fleet view:
   counters and gauges sum pointwise by name, histograms merge
   bucket-wise (every histogram shares the fixed grid) with the
   quantiles re-estimated from the merged buckets. *)

let merge_assoc (a : (string * int) list) (b : (string * int) list) : (string * int) list =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (k, v) ->
      Hashtbl.replace tbl k (v + (match Hashtbl.find_opt tbl k with Some v0 -> v0 | None -> 0)))
    (a @ b);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)

let merge_hist_stats (a : hist_stats) (b : hist_stats) : hist_stats =
  if a.h_count = 0 then b
  else if b.h_count = 0 then a
  else begin
    let base = if Array.length a.h_buckets >= Array.length b.h_buckets then a else b in
    (* Cumulative counts add pointwise on a shared grid; the lookup by
       bound keeps a foreign peer's shorter grid from misaligning. *)
    let cum_at (h : hist_stats) (bound : float) : int =
      Array.fold_left (fun acc (b', cum) -> if b' <= bound && cum > acc then cum else acc) 0
        h.h_buckets
    in
    let h_buckets =
      Array.map (fun (bound, _) -> (bound, cum_at a bound + cum_at b bound)) base.h_buckets
    in
    let raw = Array.make (Array.length h_buckets) 0 in
    let prev = ref 0 in
    Array.iteri
      (fun i (_, cum) ->
        raw.(i) <- cum - !prev;
        prev := cum)
      h_buckets;
    let h_count = a.h_count + b.h_count in
    let h_min = Float.min a.h_min b.h_min in
    let h_max = Float.max a.h_max b.h_max in
    let quantile = quantile_of_buckets ~count:h_count ~min_v:h_min ~max_v:h_max raw in
    { h_count; h_sum = a.h_sum +. b.h_sum; h_min; h_max; h_buckets; h_p50 = quantile 0.50;
      h_p95 = quantile 0.95; h_p99 = quantile 0.99 }
  end

let merge_snapshots (a : snapshot) (b : snapshot) : snapshot =
  let merge_hists xs ys =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (k, h) ->
        Hashtbl.replace tbl k
          (match Hashtbl.find_opt tbl k with None -> h | Some h0 -> merge_hist_stats h0 h))
      (xs @ ys);
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
  in
  { counters = merge_assoc a.counters b.counters; gauges = merge_assoc a.gauges b.gauges;
    histograms = merge_hists a.histograms b.histograms }

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
  Hashtbl.iter
    (fun _ g ->
      Atomic.set g.g_cell 0;
      Atomic.set g.g_touched false)
    gauges;
  Hashtbl.iter
    (fun _ h ->
      Mutex.lock h.lock;
      h.obs_count <- 0;
      h.obs_sum <- 0.;
      h.obs_min <- infinity;
      h.obs_max <- neg_infinity;
      Array.fill h.buckets 0 (Array.length h.buckets) 0;
      Mutex.unlock h.lock)
    histograms;
  Mutex.unlock registry_lock

let pp_snapshot fmt (s : snapshot) =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (name, v) -> Format.fprintf fmt "%-36s %12d@," name v) s.counters;
  List.iter (fun (name, v) -> Format.fprintf fmt "%-36s %12d (gauge)@," name v) s.gauges;
  List.iter
    (fun (name, h) ->
      Format.fprintf fmt "%-36s n=%d sum=%.3f min=%.3f max=%.3f mean=%.3f p50=%.3f p95=%.3f p99=%.3f@,"
        name h.h_count h.h_sum h.h_min h.h_max
        (h.h_sum /. float_of_int h.h_count)
        h.h_p50 h.h_p95 h.h_p99)
    s.histograms;
  Format.fprintf fmt "@]"

(* --- JSON export ---------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON numbers may not be inf/nan; snapshots only expose nonempty
   histograms, so min/max are always finite here. *)
let json_float f = Printf.sprintf "%.6g" f

let snapshot_to_json (s : snapshot) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape name) v))
    s.counters;
  Buffer.add_string buf "},\"gauges\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape name) v))
    s.gauges;
  Buffer.add_string buf "},\"histograms\":{";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"mean\":%s,\
            \"p50\":%s,\"p95\":%s,\"p99\":%s}"
           (json_escape name) h.h_count (json_float h.h_sum) (json_float h.h_min)
           (json_float h.h_max)
           (json_float (h.h_sum /. float_of_int h.h_count))
           (json_float h.h_p50) (json_float h.h_p95) (json_float h.h_p99)))
    s.histograms;
  Buffer.add_string buf "}}";
  Buffer.contents buf

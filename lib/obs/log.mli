(** Structured logging: leveled JSON-lines events.

    Events are flat JSON objects, one per line:

    {v
    {"ts":1722871234.561,"level":"info","event":"request.done","req":17,"kind":"Aggregate","ms":41.2}
    v}

    Logging is off until a sink is attached ({!to_file} / {!to_channel});
    with no sink, {!event} is a load and a comparison, so request paths
    can stay instrumented unconditionally. Emission takes a mutex, so
    the transport accept loop and handlers may log concurrently. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
val level_of_string : string -> level option

(** {1 Configuration} *)

val set_level : level -> unit
(** Threshold, [Info] by default: events below it are dropped. *)

val to_file : string -> unit
(** Attach a JSON-lines sink appending to [path] (created 0o644),
    replacing any previous sink. *)

val to_channel : out_channel -> unit
(** Attach an already-open channel (not closed on {!detach}). *)

val detach : unit -> unit
(** Flush and drop the sink (closing it if {!to_file} opened it);
    logging is disabled again. *)

val enabled : level -> bool
(** Would an event at this level be emitted right now? Use to guard
    expensive field construction. *)

(** {1 Fields} *)

type field

val str : string -> string -> field
val int : string -> int -> field
val float : string -> float -> field
val bool : string -> bool -> field

(** {1 Emission} *)

val next_request_id : unit -> int
(** Fresh id tying together the log lines (and the {!Audit} trace) of
    one request; atomic, so safe from any domain. *)

val event : ?fields:field list -> level -> string -> unit
(** Emit one line; a no-op when below the threshold or sink-less. *)

val debug : ?fields:field list -> string -> unit
val info : ?fields:field list -> string -> unit
val warn : ?fields:field list -> string -> unit
val error : ?fields:field list -> string -> unit

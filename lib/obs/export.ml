(* Prometheus text-format exposition of a metrics snapshot.

   Dotted registry names become legal Prometheus identifiers under a
   "sagma_" namespace ("proto.request_ms" → "sagma_proto_request_ms");
   counters gain the conventional "_total" suffix. Histograms expose the
   full fixed-grid cumulative buckets (le="...", +Inf last) plus _sum and
   _count, and the snapshot's p50/p95/p99 estimates ride along as gauges
   so dashboards need no PromQL histogram_quantile to get first-look
   latencies. *)

let namespace = "sagma"

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names are
   ASCII dotted paths, so mapping every other char to '_' suffices. *)
let sanitize (name : string) : string =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let metric_name (name : string) : string = namespace ^ "_" ^ sanitize name

(* Label values and the `le` bound: Prometheus renders +Inf literally. *)
let le_value (bound : float) : string =
  if bound = infinity then "+Inf" else Printf.sprintf "%g" bound

let float_value (v : float) : string =
  if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else Printf.sprintf "%g" v

(* [raw] samples carry their final exposition names (the conventional
   process-level families "ocaml_gc_*" / "process_*" from
   {!Prof.gc_samples}/{!Prof.process_samples}); they bypass the sagma
   namespace. Names ending in "_total" are typed counter, everything
   else gauge. *)
let prometheus ?uptime_s ?(raw : (string * float) list = []) (s : Metrics.snapshot) : string =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf l; Buffer.add_char buf '\n') fmt in
  (match uptime_s with
   | Some u ->
     let m = namespace ^ "_uptime_seconds" in
     line "# HELP %s Seconds since the server started" m;
     line "# TYPE %s gauge" m;
     line "%s %s" m (float_value u)
   | None -> ());
  List.iter
    (fun (name, v) ->
      let m = sanitize name in
      let typ =
        if String.length m > 6 && String.sub m (String.length m - 6) 6 = "_total" then "counter"
        else "gauge"
      in
      line "# HELP %s Process-level sample %s" m name;
      line "# TYPE %s %s" m typ;
      line "%s %s" m (float_value v))
    raw;
  List.iter
    (fun (name, v) ->
      let m = metric_name name ^ "_total" in
      line "# HELP %s SAGMA counter %s" m name;
      line "# TYPE %s counter" m;
      line "%s %d" m v)
    s.Metrics.counters;
  List.iter
    (fun (name, v) ->
      let m = metric_name name in
      line "# HELP %s SAGMA gauge %s" m name;
      line "# TYPE %s gauge" m;
      line "%s %d" m v)
    s.Metrics.gauges;
  List.iter
    (fun (name, h) ->
      let m = metric_name name in
      line "# HELP %s SAGMA histogram %s" m name;
      line "# TYPE %s histogram" m;
      Array.iter
        (fun (bound, cum) -> line "%s_bucket{le=\"%s\"} %d" m (le_value bound) cum)
        h.Metrics.h_buckets;
      line "%s_sum %s" m (float_value h.Metrics.h_sum);
      line "%s_count %d" m h.Metrics.h_count;
      (* Quantile estimates as companion gauges (histogram series may not
         carry a `quantile` label themselves). *)
      List.iter
        (fun (suffix, v) ->
          let g = m ^ "_" ^ suffix in
          line "# TYPE %s gauge" g;
          line "%s %s" g (float_value v))
        [ ("p50", h.Metrics.h_p50); ("p95", h.Metrics.h_p95); ("p99", h.Metrics.h_p99) ])
    s.Metrics.histograms;
  Buffer.contents buf

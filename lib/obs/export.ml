(* Prometheus text-format exposition of a metrics snapshot.

   Dotted registry names become legal Prometheus identifiers under a
   "sagma_" namespace ("proto.request_ms" → "sagma_proto_request_ms");
   counters gain the conventional "_total" suffix. Histograms expose the
   full fixed-grid cumulative buckets (le="...", +Inf last) plus _sum and
   _count, and the snapshot's p50/p95/p99 estimates ride along as gauges
   so dashboards need no PromQL histogram_quantile to get first-look
   latencies.

   Fleet federation (PR 10) introduces *labeled* series: a snapshot
   entry named "proto.requests{shard=\"1\"}" (built with {!labeled})
   renders as sagma_proto_requests_total{shard="1"}. Only the base name
   is sanitized; the label block travels verbatim, so label values must
   be escaped with {!escape_label_value} when the series is built —
   {!labeled} does it for you. *)

let namespace = "sagma"

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names are
   ASCII dotted paths, so mapping every other char to '_' suffices. *)
let sanitize (name : string) : string =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

(* Prometheus label values escape backslash, double-quote and newline
   (the exposition format's only escapes). Hostile shard endpoints —
   quotes, newlines injecting fake samples — must round-trip as data. *)
let escape_label_value (v : string) : string =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labeled (name : string) (labels : (string * string) list) : string =
  match labels with
  | [] -> name
  | _ ->
    let pair (k, v) = Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label_value v) in
    name ^ "{" ^ String.concat "," (List.map pair labels) ^ "}"

(* Split "base{...}" into the sanitizable base and the opaque label
   block (empty for unlabeled names). *)
let split_labels (name : string) : string * string =
  match String.index_opt name '{' with
  | None -> (name, "")
  | Some i -> (String.sub name 0 i, String.sub name i (String.length name - i))

let metric_name (name : string) : string = namespace ^ "_" ^ sanitize (fst (split_labels name))

(* Label values and the `le` bound: Prometheus renders +Inf literally. *)
let le_value (bound : float) : string =
  if bound = infinity then "+Inf" else Printf.sprintf "%g" bound

let float_value (v : float) : string =
  if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else Printf.sprintf "%g" v

(* Merge a series' own label block with an extra label (the histogram
   `le` bound): {shard="1"} + le → {shard="1",le="..."} . *)
let with_label (labels : string) (extra : string) : string =
  if labels = "" then "{" ^ extra ^ "}"
  else String.sub labels 0 (String.length labels - 1) ^ "," ^ extra ^ "}"

(* [raw] samples carry their final exposition names (the conventional
   process-level families "ocaml_gc_*" / "process_*" from
   {!Prof.gc_samples}/{!Prof.process_samples}); they bypass the sagma
   namespace. Names ending in "_total" are typed counter, everything
   else gauge. *)
let prometheus ?uptime_s ?(raw : (string * float) list = []) (s : Metrics.snapshot) : string =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf l; Buffer.add_char buf '\n') fmt in
  (* HELP/TYPE are per family: labeled series of one family share them,
     and a duplicate TYPE line is a parse error for real scrapers. *)
  let seen = Hashtbl.create 64 in
  let header (m : string) (typ : string) (help : string) : unit =
    if not (Hashtbl.mem seen m) then begin
      Hashtbl.add seen m ();
      line "# HELP %s %s" m help;
      line "# TYPE %s %s" m typ
    end
  in
  (match uptime_s with
   | Some u ->
     let m = namespace ^ "_uptime_seconds" in
     header m "gauge" "Seconds since the server started";
     line "%s %s" m (float_value u)
   | None -> ());
  List.iter
    (fun (name, v) ->
      let m = sanitize name in
      let typ =
        if String.length m > 6 && String.sub m (String.length m - 6) 6 = "_total" then "counter"
        else "gauge"
      in
      header m typ (Printf.sprintf "Process-level sample %s" name);
      line "%s %s" m (float_value v))
    raw;
  List.iter
    (fun (name, v) ->
      let base, labels = split_labels name in
      let m = metric_name base ^ "_total" in
      header m "counter" (Printf.sprintf "SAGMA counter %s" base);
      line "%s%s %d" m labels v)
    s.Metrics.counters;
  List.iter
    (fun (name, v) ->
      let base, labels = split_labels name in
      let m = metric_name base in
      header m "gauge" (Printf.sprintf "SAGMA gauge %s" base);
      line "%s%s %d" m labels v)
    s.Metrics.gauges;
  List.iter
    (fun (name, h) ->
      let base, labels = split_labels name in
      let m = metric_name base in
      header m "histogram" (Printf.sprintf "SAGMA histogram %s" base);
      Array.iter
        (fun (bound, cum) ->
          line "%s_bucket%s %d" m
            (with_label labels (Printf.sprintf "le=\"%s\"" (le_value bound)))
            cum)
        h.Metrics.h_buckets;
      line "%s_sum%s %s" m labels (float_value h.Metrics.h_sum);
      line "%s_count%s %d" m labels h.Metrics.h_count;
      (* Quantile estimates as companion gauges (histogram series may not
         carry a `quantile` label themselves). *)
      List.iter
        (fun (suffix, v) ->
          let g = m ^ "_" ^ suffix in
          header g "gauge" (Printf.sprintf "SAGMA histogram quantile %s %s" base suffix);
          line "%s%s %s" g labels (float_value v))
        [ ("p50", h.Metrics.h_p50); ("p95", h.Metrics.h_p95); ("p99", h.Metrics.h_p99) ])
    s.Metrics.histograms;
  Buffer.contents buf

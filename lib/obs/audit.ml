(* Leakage auditor: record what the server actually touched, compare it
   with what the declared leakage function predicts.

   This module is deliberately ignorant of SAGMA: it records generic
   probes — (kind, tag, matching row ids) triples plus a paired-row
   count — against the current request, and [check] compares an observed
   trace with a caller-supplied prediction. The glue that derives the
   prediction from [Sagma.Leakage.of_query] lives in the sagma library
   (which depends on this one, not vice versa).

   Recording follows the request path's threading shape: every probe for
   a request fires on the domain that runs its handler (the aggregation
   chunk workers never probe), so the in-progress builder lives in
   domain-local storage — concurrent requests served by a domain pool
   each see their own trace with no cross-talk — while the completed
   queue stays a mutex-guarded global shared by all domains. *)

type probe = { p_kind : string; p_tag : string; p_matches : int list }

type trace = { t_id : int; t_probes : probe list; t_rows_paired : int }

type verdict = Pass | Fail of string list

let enabled = ref false
let set_enabled b = enabled := b

(* --- recording ------------------------------------------------------------- *)

type builder = { b_id : int; mutable probes_rev : probe list; mutable rows : int }

let lock = Mutex.create ()

(* One in-progress builder per domain: a request's begin/probe/end all
   run on the domain serving it, so no lock is needed around the
   builder itself. *)
let current : builder option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* Completed traces, oldest at the queue's front, newest at its back,
   plus a running probe total over the retained traces so [summary]
   stays O(1) in probes.

   Retention cap: a long-lived server must not grow without bound; the
   CLI fetches the summary, tests fetch [traces] promptly. The queue
   gives an O(1) drop of the oldest trace per completed request. *)
let completed : trace Queue.t = Queue.create ()
let completed_probes = ref 0
let max_completed = 1024

let begin_request (id : int) : unit =
  if !enabled then
    Domain.DLS.get current := Some { b_id = id; probes_rev = []; rows = 0 }

let probe ~(kind : string) ~(tag : string) ~(matches : int list) : unit =
  if !enabled then
    match !(Domain.DLS.get current) with
    | Some b -> b.probes_rev <- { p_kind = kind; p_tag = tag; p_matches = matches } :: b.probes_rev
    | None -> ()

let rows_paired (n : int) : unit =
  if !enabled then
    match !(Domain.DLS.get current) with Some b -> b.rows <- b.rows + n | None -> ()

let end_request () : trace option =
  if not !enabled then None
  else begin
    let cur = Domain.DLS.get current in
    match !cur with
    | None -> None
    | Some b ->
      cur := None;
      let t = { t_id = b.b_id; t_probes = List.rev b.probes_rev; t_rows_paired = b.rows } in
      Mutex.lock lock;
      Queue.push t completed;
      completed_probes := !completed_probes + List.length t.t_probes;
      if Queue.length completed > max_completed then begin
        let oldest = Queue.pop completed in
        completed_probes := !completed_probes - List.length oldest.t_probes
      end;
      Mutex.unlock lock;
      Some t
  end

let traces () : trace list =
  Mutex.lock lock;
  let ts = List.rev (Queue.fold (fun acc t -> t :: acc) [] completed) in
  Mutex.unlock lock;
  ts

let checks_run = Atomic.make 0
let check_failures = Atomic.make 0

let reset () =
  Domain.DLS.get current := None;
  Mutex.lock lock;
  Queue.clear completed;
  completed_probes := 0;
  Mutex.unlock lock;
  Atomic.set checks_run 0;
  Atomic.set check_failures 0

(* --- checking -------------------------------------------------------------- *)

let sorted_uniq (xs : int list) : int list = List.sort_uniq compare xs

let pp_ids (ids : int list) : string =
  "[" ^ String.concat "," (List.map string_of_int ids) ^ "]"

let check ?(max_rows_paired : int option)
    ~(predicted : (string * string * int list) list) (t : trace) : verdict =
  ignore (Atomic.fetch_and_add checks_run 1);
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  (* Every probe the server performed must be predicted: same (kind, tag)
     declared, and exactly the predicted row ids observed. An extra
     probe, a probe on an undeclared tag, or a posting list differing
     from the declared access pattern all fail. *)
  List.iter
    (fun p ->
      match
        List.find_opt (fun (k, tag, _) -> k = p.p_kind && tag = p.p_tag) predicted
      with
      | None ->
        err "unpredicted probe: kind=%s tag=%s matches=%s (declared leakage has no such access)"
          p.p_kind p.p_tag (pp_ids (sorted_uniq p.p_matches))
      | Some (_, _, want) ->
        let got = sorted_uniq p.p_matches and want = sorted_uniq want in
        if got <> want then
          err "access pattern mismatch: kind=%s tag=%s observed=%s predicted=%s" p.p_kind
            p.p_tag (pp_ids got) (pp_ids want))
    t.t_probes;
  (* Duplicate probes of one (kind, tag) are fine — repetition is the
     search pattern, which the leakage declares — but pairing more rows
     than the predicted result width means the server combined
     ciphertexts the query should never touch. *)
  (match max_rows_paired with
   | Some bound when t.t_rows_paired > bound ->
     err "rows paired beyond prediction: paired=%d predicted<=%d" t.t_rows_paired bound
   | _ -> ());
  match !errors with
  | [] -> Pass
  | es ->
    ignore (Atomic.fetch_and_add check_failures 1);
    Fail (List.rev es)

let pp_verdict fmt = function
  | Pass -> Format.fprintf fmt "Pass"
  | Fail es ->
    Format.fprintf fmt "@[<v>Fail:%t@]" (fun fmt ->
        List.iter (fun e -> Format.fprintf fmt "@,  %s" e) es)

(* --- summary --------------------------------------------------------------- *)

type summary = {
  s_requests : int;
  s_probes : int;
  s_checks_run : int;
  s_check_failures : int;
}

let summary () : summary =
  Mutex.lock lock;
  let requests = Queue.length completed in
  let probes = !completed_probes in
  Mutex.unlock lock;
  { s_requests = requests; s_probes = probes; s_checks_run = Atomic.get checks_run;
    s_check_failures = Atomic.get check_failures }

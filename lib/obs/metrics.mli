(** Metrics registry: named monotonic counters and value histograms.

    Every hot path in the repository reports through this module, so the
    cost model of the paper (§3.4/§5 — pairings per row, Lagrange scalar
    multiplications, bounded discrete logs) can be measured directly
    rather than inferred from wall-clock time.

    Collection is off by default: {!incr}/{!add}/{!observe} reduce to a
    single flag test and return, so instrumented code pays nothing
    measurable when disabled. Counters are [Atomic.t] cells, safe to
    bump from the domains [Sagma.Scheme.aggregate] spawns; histograms
    take a mutex per observation and are only used on coarse paths
    (request latency, per-chunk timings). *)

type counter
type histogram
type gauge

val enabled : bool ref
(** The global switch, [false] by default. Prefer {!set_enabled}; the
    ref is exposed so hot paths can guard compound work with a single
    load ([if !Metrics.enabled then ...]). *)

val set_enabled : bool -> unit

(** {1 Registration}

    Registration is idempotent: calling {!counter} (or {!histogram})
    twice with one name returns the same cell, so tests can look up the
    handles the instrumented libraries registered at init time. Handles
    should be created once at module initialization, never per
    operation. *)

val counter : string -> counter
val histogram : string -> histogram

val gauge : string -> gauge
(** Gauges are level measurements (in-flight connections, pool queue
    depth): unlike counters they move both ways, and a zero reading is
    meaningful, so snapshots keep any gauge that has ever been
    recorded to. *)

(** {1 Hot-path recording} *)

val incr : counter -> unit
val add : counter -> int -> unit
val observe : histogram -> float -> unit

val gauge_incr : gauge -> unit
val gauge_decr : gauge -> unit
val gauge_add : gauge -> int -> unit
val gauge_set : gauge -> int -> unit

val gauge_value : gauge -> int
(** Current level (readable even while disabled). *)

val observe_ms : histogram -> (unit -> 'a) -> 'a
(** [observe_ms h f] runs [f ()] and records its wall-clock duration in
    milliseconds. When collection is disabled this is exactly [f ()].
    Safe on any domain (unlike {!Trace.with_span}). *)

val value : counter -> int
(** Current count (readable even while disabled). *)

(** {1 Per-request cost scopes}

    The registry counters are process-global, so under a domain pool the
    deltas of concurrent requests blend together. A scope is a small
    atomic vector of the §6 cost-model counters ([pairing.pairings],
    [pairing.miller_steps], [bgn.mul], [bgn.dlog.solves],
    [bgn.dlog.giant_steps], [sse.postings_scanned],
    [oxt.postings_scanned], [scheme.agg.rows],
    [scheme.agg.joint_buckets]); while one is installed on a domain,
    every {!incr}/{!add} on a tracked counter also lands in it, so the
    request being served gets its own exact deltas. Scopes are installed
    domain-locally and shared across the pool domains that run one
    request's aggregation chunks (see [Trace.capture]/[Trace.with_ctx]). *)

type scope

val scope_create : unit -> scope
(** A fresh all-zero scope, not yet installed anywhere. *)

val scope_swap : scope option -> scope option
(** Install a scope (or none) on the calling domain, returning what was
    installed before — the save/restore primitive. *)

val scope_current : unit -> scope option
(** The scope installed on the calling domain, if any. *)

val scope_get : scope -> string -> int
(** Delta recorded for a tracked counter name (0 for untracked names). *)

val scope_counters : scope -> (string * int) list
(** Every tracked counter with its recorded delta, in registry order. *)

(** {1 Snapshots} *)

val bucket_bounds : float array
(** The fixed exponential bucket grid every histogram shares: upper
    bounds [0.001 · 2^i]. Observations above the last bound land in an
    implicit +∞ overflow bucket. *)

type hist_stats = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) array;
      (** cumulative count per upper bound ({!bucket_bounds} order, +∞
          last) — directly exposable as Prometheus [_bucket] series *)
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
      (** quantile estimates: linear interpolation inside the bucket
          holding the q·count-th observation, clamped to [min, max] *)
}

type snapshot = {
  counters : (string * int) list;        (** nonzero counters, sorted *)
  gauges : (string * int) list;          (** ever-touched gauges, sorted *)
  histograms : (string * hist_stats) list;  (** nonempty histograms, sorted *)
}

val snapshot : unit -> snapshot

val merge_hist_stats : hist_stats -> hist_stats -> hist_stats
(** Combine two histograms of the same metric from different nodes:
    counts, sums and cumulative buckets add pointwise (all histograms
    share {!bucket_bounds}), min/max widen, and p50/p95/p99 are
    re-estimated from the merged buckets. *)

val merge_snapshots : snapshot -> snapshot -> snapshot
(** Fleet federation: pointwise sum of counters and gauges by name,
    {!merge_hist_stats} on histograms. Used by a coordinator merging its
    shards' [Stats] replies into one fleet-wide view. *)

val reset : unit -> unit
(** Zero every registered counter and histogram (registration is kept). *)

val pp_snapshot : Format.formatter -> snapshot -> unit

val snapshot_to_json : snapshot -> string
(** A JSON object [{"counters": {...}, "gauges": {...},
    "histograms": {...}}]; histogram entries carry count/sum/min/max/mean
    and p50/p95/p99. *)

val json_escape : string -> string
(** Escape a string for embedding inside JSON quotes (exposed for the
    bench harness's hand-rolled emitter). *)
